"""Worker processes: one per machine, hosting task threads.

The worker owns the machine's transport inbox and runs the **receive
thread**: take a wire message, pay the receive CPU (kernel TCP path or
RDMA completion), then let the packet deliver itself — deserialization,
local dispatch to executor incoming-queues, and (for multicast packets)
relaying to cascading endpoints all run on this thread, exactly like the
"specialized receiving thread" + dispatcher of Section 4.

Control-plane packets (``kind="control"``) are fanned out to registered
handlers (the multicast controller, the replay coordinator).  Heartbeat
pings are answered by the worker itself, so liveness reflects the
machine, not any single component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.dsps.tuples import AddressedTuple
from repro.net import cpu as cats
from repro.net.cpu import CpuAccount

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsps.executor import BoltExecutor
    from repro.dsps.system import DspsSystem


@dataclass(frozen=True)
class HeartbeatPing:
    """Liveness probe from a failure detector to a worker machine."""

    reply_to: int
    seq: int


@dataclass(frozen=True)
class HeartbeatAck:
    """A worker's reply to a :class:`HeartbeatPing`."""

    machine: int
    seq: int


class Worker:
    """One worker process on one machine."""

    def __init__(self, system: "DspsSystem", machine_id: int):
        self.system = system
        self.sim = system.sim
        self.machine_id = machine_id
        self.cpu = CpuAccount(self.sim, f"worker[{machine_id}]")
        self.inbox = system.transport.bind_inbox(machine_id)
        #: local task id -> executor (filled by the system during build).
        self.executors: Dict[int, "BoltExecutor"] = {}
        #: handlers for control-plane packets (controller, acker, ...);
        #: every handler sees every control payload and filters by type.
        self._control_handlers: List[Callable] = []
        #: True while this machine is crashed.
        self.crashed = False
        self.messages_received = 0
        self.dispatched = 0
        self.heartbeats_answered = 0

    def start(self) -> None:
        self.sim.process(self._receive_loop())

    # ------------------------------------------------------------------
    def add_control_handler(self, handler: Callable) -> None:
        """Register a control-plane payload handler."""
        self._control_handlers.append(handler)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Machine crash: everything buffered in this process is lost."""
        self.crashed = True
        self.inbox.clear()

    def on_recover(self) -> None:
        self.crashed = False

    # ------------------------------------------------------------------
    def dispatch_local(self, at: AddressedTuple) -> None:
        """Hand a tuple to a locally hosted executor."""
        executor = self.executors.get(at.task_id)
        if executor is None:
            raise LookupError(
                f"task {at.task_id} is not hosted on machine {self.machine_id}"
            )
        self.cpu.charge(self.system.costs.dispatch_cpu_s, cats.DISPATCH)
        self.dispatched += 1
        self.system.metrics.multicast.on_receive(at.tuple.tuple_id, at.task_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "worker.dispatch",
                self.sim.now,
                id=at.tuple.tuple_id,
                task=at.task_id,
                machine=self.machine_id,
            )
        executor.accept(at)
        flow = self.system.flow
        if flow is not None:
            # Return the sender's credit reservation for this copy.
            flow.on_dispatch(executor)

    # ------------------------------------------------------------------
    def _receive_loop(self):
        sim = self.sim
        cpu = self.cpu
        while True:
            msg = yield self.inbox.get()
            if self.crashed:
                continue  # raced the crash; the fabric drops the rest
            self.messages_received += 1
            payload = msg.payload
            if msg.kind == "control":
                if msg.recv_cpu_s > 0:
                    yield from cpu.work(msg.recv_cpu_s, cats.NETWORK)
                if isinstance(payload, HeartbeatPing):
                    self.sim.process(self._answer_heartbeat(payload))
                else:
                    for handler in self._control_handlers:
                        handler(payload)
                continue
            deser = getattr(payload, "deserialize_cpu_s", None)
            if deser is None:
                # PacketGroup (sliced WR) or other composite payload:
                # the event-resolved path charges per packet.
                if msg.recv_cpu_s > 0:
                    yield from cpu.work(msg.recv_cpu_s, cats.NETWORK)
                yield from payload.deliver(self)
                continue
            # Fused receive + deserialize: both CPU categories are
            # charged separately but the thread blocks once, halving the
            # per-message event count on the receive path.
            if msg.recv_cpu_s > 0:
                cpu.charge(msg.recv_cpu_s, cats.NETWORK)
            if deser > 0:
                cpu.charge(deser, cats.DESERIALIZATION)
            total = msg.recv_cpu_s + deser
            if total > 0:
                yield sim.timeout(total)
            yield from payload.deliver(self, charge_deser=False)

    def _answer_heartbeat(self, ping: HeartbeatPing):
        if self.crashed:
            return
        self.heartbeats_answered += 1
        yield from self.system.control_send(
            self.machine_id,
            ping.reply_to,
            HeartbeatAck(machine=self.machine_id, seq=ping.seq),
            self.cpu,
        )
