"""System assembly: topology + config + cluster -> a runnable simulation.

``DspsSystem`` builds the whole object graph (fabric, transport, workers,
executors, multicast services, metrics) and provides the standard
measurement protocol used by every experiment:

>>> system = DspsSystem(topology, config, arrivals={"requests": arrivals})
>>> result = system.run_measured(warmup_s=0.2, measure_s=1.0)

Measurement excludes warmup; throughput/latency come from the metrics hub
restricted to the window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dsps.comm import CommEngine, MulticastService
from repro.dsps.config import SystemConfig
from repro.dsps.executor import BoltExecutor, ExecutorBase, SpoutExecutor
from repro.dsps.metrics import MetricsHub
from repro.dsps.scheduler import Placement, schedule
from repro.dsps.topology import Topology
from repro.dsps.worker import Worker
from repro.net.cluster import Cluster
from repro.net.fabric import Fabric
from repro.net.rdma import RdmaTransport
from repro.net.serialization import SerializationModel
from repro.net.tcp import TcpTransport
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: gap function: seconds until the next tuple, or None to stop.
ArrivalFn = Callable[[float], Optional[float]]


class DspsSystem:
    """One fully-wired stream processing system on a simulated cluster."""

    def __init__(
        self,
        topology: Topology,
        config: SystemConfig,
        cluster: Optional[Cluster] = None,
        arrivals: Optional[Dict[str, ArrivalFn]] = None,
        seed: int = 0,
        fabric_options: Optional[Dict] = None,
        tracer=None,
    ):
        """``fabric_options`` are forwarded to :class:`~repro.net.fabric.
        Fabric` (fault injection: ``loss_probability``; oversubscription:
        ``rack_uplink_bandwidth_bps``).  ``tracer`` is an optional
        :class:`~repro.trace.Tracer` attached to the simulator; with none
        attached every trace hook is a single attribute check."""
        fabric_options = fabric_options or {}
        self.topology = topology
        self.config = config
        self.costs = config.costs
        self.cluster = cluster if cluster is not None else Cluster(30, 1, 16)
        self.sim = Simulator()
        self.sim.tracer = tracer
        self.rng = RngRegistry(seed)
        self.serialization = SerializationModel(self.costs)
        self.metrics = MetricsHub(self.sim)

        # --- network ------------------------------------------------------
        if config.transport == "tcp":
            self.fabric = Fabric(
                self.sim,
                self.cluster,
                bandwidth_bps=self.costs.ethernet_bandwidth_bps,
                base_latency_s=self.costs.ethernet_latency_s,
                rack_hop_latency_s=self.costs.rack_hop_latency_s,
                name="ethernet",
                **fabric_options,
            )
            self.transport = TcpTransport(self.sim, self.fabric, self.costs)
        else:
            self.fabric = Fabric(
                self.sim,
                self.cluster,
                bandwidth_bps=self.costs.infiniband_bandwidth_bps,
                base_latency_s=self.costs.infiniband_latency_s,
                rack_hop_latency_s=self.costs.rack_hop_latency_s,
                name="infiniband",
                **fabric_options,
            )
            self.transport = RdmaTransport(
                self.sim,
                self.fabric,
                self.costs,
                data_verb=config.data_verb,
                control_verb=config.control_verb,
            )

        # --- placement + runtime objects -----------------------------------
        self.placement: Placement = schedule(topology, self.cluster)
        self.workers: Dict[int, Worker] = {
            m.machine_id: Worker(self, m.machine_id) for m in self.cluster
        }
        self.comm = CommEngine(self)
        self.executors: Dict[int, ExecutorBase] = {}
        self.spout_executors: List[SpoutExecutor] = []
        for op in topology.spouts():
            for task_id in self.placement.tasks_of[op.name]:
                ex = SpoutExecutor(self, task_id)
                self.executors[task_id] = ex
                self.spout_executors.append(ex)
        for op in topology.bolts():
            for task_id in self.placement.tasks_of[op.name]:
                ex = BoltExecutor(self, task_id)
                self.executors[task_id] = ex
                self.workers[ex.machine_id].executors[task_id] = ex

        # --- multicast services --------------------------------------------
        self._services: Dict[tuple, MulticastService] = {}
        if config.multicast != "sequential":
            for bolt in topology.bolts():
                for upstream, grouping in bolt.inputs.items():
                    if not grouping.one_to_many:
                        continue
                    for src_task in self.placement.tasks_of[upstream]:
                        self._services[(src_task, bolt.name)] = MulticastService(
                            self,
                            src_task=src_task,
                            dst_operator=bolt.name,
                            structure=config.multicast,
                            d_star=config.d_star or 3,
                            worker_level=config.worker_oriented,
                        )

        # --- arrivals --------------------------------------------------------
        if arrivals:
            self.set_arrivals(arrivals)
        self._started = False

    # ------------------------------------------------------------------
    def set_arrivals(self, arrivals: Dict[str, ArrivalFn]) -> None:
        for name, gap_fn in arrivals.items():
            tasks = self.placement.tasks_of.get(name)
            if tasks is None:
                raise KeyError(f"no spout named {name!r}")
            for task_id in tasks:
                ex = self.executors[task_id]
                if not isinstance(ex, SpoutExecutor):
                    raise TypeError(f"{name!r} is not a spout")
                ex.set_arrival_process(gap_fn)

    @property
    def tracer(self):
        """The tracer attached to this system's simulator (or ``None``)."""
        return self.sim.tracer

    def multicast_service(
        self, src_task: int, dst_operator: str
    ) -> Optional[MulticastService]:
        return self._services.get((src_task, dst_operator))

    @property
    def multicast_services(self) -> List[MulticastService]:
        return list(self._services.values())

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch every worker and executor process."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for worker in self.workers.values():
            worker.start()
        for ex in self.executors.values():
            ex.start()

    def run_measured(self, warmup_s: float, measure_s: float) -> MetricsHub:
        """Run warmup, then a measurement window; return the metrics hub."""
        if not self._started:
            self.start()
        if warmup_s > 0:
            self.sim.run(until=self.sim.now + warmup_s)
        self.metrics.open_window()
        self.sim.run(until=self.sim.now + measure_s)
        self.metrics.close_window()
        return self.metrics

    # ------------------------------------------------------------------
    # control-plane helper (used by the Whale controller)
    # ------------------------------------------------------------------
    def control_send(
        self, src_machine: int, dst_machine: int, payload, cpu_account
    ):
        """Send one control message (generator)."""
        size = self.serialization.control_message_bytes()
        yield from self.transport.send(
            src_machine, dst_machine, payload, size, cpu_account, kind="control"
        )

    # ------------------------------------------------------------------
    # convenience accessors for experiments
    # ------------------------------------------------------------------
    def source_executor(self, spout_name: str) -> SpoutExecutor:
        task = self.placement.tasks_of[spout_name][0]
        ex = self.executors[task]
        assert isinstance(ex, SpoutExecutor)
        return ex

    def operator_executors(self, operator: str) -> List[ExecutorBase]:
        return [self.executors[t] for t in self.placement.tasks_of[operator]]

    def traffic_bytes(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.fabric.bytes_by_kind.values())
        return self.fabric.bytes_by_kind.get(kind, 0)
