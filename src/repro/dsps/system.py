"""System assembly: topology + config + cluster -> a runnable simulation.

``DspsSystem`` builds the whole object graph (fabric, transport, workers,
executors, multicast services, metrics) and provides the standard
measurement protocol used by every experiment:

>>> system = DspsSystem(topology, config, arrivals={"requests": arrivals})
>>> result = system.run_measured(warmup_s=0.2, measure_s=1.0)

Measurement excludes warmup; throughput/latency come from the metrics hub
restricted to the window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dsps.comm import CommEngine, MulticastService
from repro.dsps.config import SystemConfig
from repro.dsps.executor import BoltExecutor, ExecutorBase, SpoutExecutor
from repro.dsps.flow import FlowController
from repro.dsps.grouping import Grouping, make_grouping
from repro.dsps.metrics import MetricsHub
from repro.dsps.rebalance import PartitionRouter, Rebalancer
from repro.dsps.reliability import ReplayCoordinator
from repro.dsps.scheduler import Placement, schedule
from repro.dsps.topology import Topology
from repro.dsps.worker import Worker
from repro.faults import FaultInjector, FaultSchedule
from repro.net.cluster import Cluster
from repro.net.fabric import Fabric
from repro.net.rdma import RdmaTransport
from repro.net.serialization import SerializationModel
from repro.net.tcp import TcpTransport
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: gap function: seconds until the next tuple, or None to stop.
ArrivalFn = Callable[[float], Optional[float]]


class DspsSystem:
    """One fully-wired stream processing system on a simulated cluster."""

    def __init__(
        self,
        topology: Topology,
        config: SystemConfig,
        cluster: Optional[Cluster] = None,
        arrivals: Optional[Dict[str, ArrivalFn]] = None,
        seed: int = 0,
        fabric_options: Optional[Dict] = None,
        tracer=None,
        fault_schedule: Optional[FaultSchedule] = None,
    ):
        """``fabric_options`` are forwarded to :class:`~repro.net.fabric.
        Fabric` (fault injection: ``loss_probability``; oversubscription:
        ``rack_uplink_bandwidth_bps``).  ``tracer`` is an optional
        :class:`~repro.trace.Tracer` attached to the simulator; with none
        attached every trace hook is a single attribute check.
        ``fault_schedule`` (a :class:`~repro.faults.FaultSchedule`)
        attaches a :class:`~repro.faults.FaultInjector` that crashes and
        recovers machines at the scheduled sim times."""
        fabric_options = fabric_options or {}
        self.topology = topology
        self.config = config
        self.costs = config.costs
        self.cluster = cluster if cluster is not None else Cluster(30, 1, 16)
        self.sim = Simulator()
        self.sim.tracer = tracer
        self.rng = RngRegistry(seed)
        self.serialization = SerializationModel(self.costs)
        self.metrics = MetricsHub(self.sim)

        # --- network ------------------------------------------------------
        if config.transport == "tcp":
            self.fabric = Fabric(
                self.sim,
                self.cluster,
                bandwidth_bps=self.costs.ethernet_bandwidth_bps,
                base_latency_s=self.costs.ethernet_latency_s,
                rack_hop_latency_s=self.costs.rack_hop_latency_s,
                name="ethernet",
                **fabric_options,
            )
            self.transport = TcpTransport(self.sim, self.fabric, self.costs)
        else:
            self.fabric = Fabric(
                self.sim,
                self.cluster,
                bandwidth_bps=self.costs.infiniband_bandwidth_bps,
                base_latency_s=self.costs.infiniband_latency_s,
                rack_hop_latency_s=self.costs.rack_hop_latency_s,
                name="infiniband",
                **fabric_options,
            )
            self.transport = RdmaTransport(
                self.sim,
                self.fabric,
                self.costs,
                data_verb=config.data_verb,
                control_verb=config.control_verb,
            )

        # --- placement + runtime objects -----------------------------------
        self.placement: Placement = schedule(topology, self.cluster)
        #: per-edge grouping instances for the ``config.partitioning``
        #: override (shared per edge, mirroring the topology's sharing)
        self._edge_groupings: Dict[tuple, Grouping] = {}
        #: live routing directory + migration controller (rebalance mode)
        self.partition_router: Optional[PartitionRouter] = (
            PartitionRouter(self) if config.rebalance else None
        )
        self.rebalancer: Optional[Rebalancer] = (
            Rebalancer(self) if config.rebalance else None
        )
        self.workers: Dict[int, Worker] = {
            m.machine_id: Worker(self, m.machine_id) for m in self.cluster
        }
        self.comm = CommEngine(self)
        self.executors: Dict[int, ExecutorBase] = {}
        self.spout_executors: List[SpoutExecutor] = []
        for op in topology.spouts():
            for task_id in self.placement.tasks_of[op.name]:
                ex = SpoutExecutor(self, task_id)
                self.executors[task_id] = ex
                self.spout_executors.append(ex)
        for op in topology.bolts():
            for task_id in self.placement.tasks_of[op.name]:
                ex = BoltExecutor(self, task_id)
                self.executors[task_id] = ex
                self.workers[ex.machine_id].executors[task_id] = ex

        # --- multicast services --------------------------------------------
        self._services: Dict[tuple, MulticastService] = {}
        if config.multicast != "sequential":
            for bolt in topology.bolts():
                for upstream, grouping in bolt.inputs.items():
                    if not grouping.one_to_many:
                        continue
                    for src_task in self.placement.tasks_of[upstream]:
                        self._services[(src_task, bolt.name)] = MulticastService(
                            self,
                            src_task=src_task,
                            dst_operator=bolt.name,
                            structure=config.multicast,
                            d_star=config.d_star or 3,
                            worker_level=config.worker_oriented,
                        )

        # --- reliability (delivery semantics) -------------------------------
        self.reliability: Optional[ReplayCoordinator] = (
            ReplayCoordinator(self) if config.reliability_enabled else None
        )

        # --- overload protection -------------------------------------------
        self.flow: Optional[FlowController] = (
            FlowController(self) if config.flow else None
        )
        #: arrival-rate multiplier applied to every spout (flash crowds)
        self.load_factor = 1.0

        # --- fault injection -----------------------------------------------
        self._crashed: set = set()
        self.crash_count = 0
        self.recovery_count = 0
        self.fault_injector: Optional[FaultInjector] = None
        #: runtime invariant checker, set by :meth:`attach_checker`.
        self.checker = None
        self._started = False
        if fault_schedule is not None:
            self.add_fault_schedule(fault_schedule)

        # --- arrivals --------------------------------------------------------
        if arrivals:
            self.set_arrivals(arrivals)

    # ------------------------------------------------------------------
    def set_arrivals(self, arrivals: Dict[str, ArrivalFn]) -> None:
        for name, gap_fn in arrivals.items():
            tasks = self.placement.tasks_of.get(name)
            if tasks is None:
                raise KeyError(f"no spout named {name!r}")
            for task_id in tasks:
                ex = self.executors[task_id]
                if not isinstance(ex, SpoutExecutor):
                    raise TypeError(f"{name!r} is not a spout")
                ex.set_arrival_process(gap_fn)

    @property
    def tracer(self):
        """The tracer attached to this system's simulator (or ``None``)."""
        return self.sim.tracer

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def edge_grouping(self, src_operator: str, dst_operator: str) -> Grouping:
        """The grouping routing the ``src -> dst`` edge.

        With ``config.partitioning`` unset this is exactly the instance
        declared on the topology (so existing modes are untouched).  With
        it set, every non-one-to-many edge is replaced by one shared
        registry instance per edge — broadcast edges keep their ``all``
        semantics (replacing them would change the topology's meaning
        and break the multicast services built on stable membership).
        """
        declared = self.topology.operators[dst_operator].inputs[src_operator]
        if self.config.partitioning is None or declared.one_to_many:
            return declared
        key = (src_operator, dst_operator)
        grouping = self._edge_groupings.get(key)
        if grouping is None:
            params = dict(self.config.partitioning_params or {})
            grouping = make_grouping(self.config.partitioning, **params)
            self._edge_groupings[key] = grouping
        return grouping

    def attach_checker(self, mode: str = "strict", **kwargs):
        """Attach a runtime :class:`~repro.check.InvariantChecker`.

        Call before :meth:`start` so the checker sees the whole run.
        ``mode`` is ``"strict"`` (raise on first breach) or ``"warn"``
        (collect into the report); extra ``kwargs`` are forwarded to the
        checker.  The checker is exposed as ``self.checker``; call
        ``self.checker.finalize()`` after the run for the end-of-run
        invariants and the report."""
        from repro.check import InvariantChecker

        checker = InvariantChecker(self, mode=mode, **kwargs)
        checker.attach()
        self.checker = checker
        return checker

    def multicast_service(
        self, src_task: int, dst_operator: str
    ) -> Optional[MulticastService]:
        return self._services.get((src_task, dst_operator))

    @property
    def multicast_services(self) -> List[MulticastService]:
        return list(self._services.values())

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def add_fault_schedule(self, schedule: FaultSchedule) -> FaultInjector:
        """Attach (and, if already running, start) a fault injector."""
        if self.fault_injector is not None:
            raise RuntimeError("a fault schedule is already attached")
        self.fault_injector = FaultInjector(self, schedule)
        if self._started:
            self.fault_injector.start()
        return self.fault_injector

    def machine_is_crashed(self, machine_id: int) -> bool:
        return machine_id in self._crashed

    def crash_machine(self, machine_id: int) -> None:
        """Fail-stop one machine: freeze its NIC, drop its in-flight
        deliveries, reset its transport state, halt its processes."""
        if machine_id in self._crashed:
            raise RuntimeError(f"machine {machine_id} is already crashed")
        if machine_id not in self.workers:
            raise KeyError(f"unknown machine {machine_id}")
        self._crashed.add(machine_id)
        self.crash_count += 1
        self.fabric.set_machine_up(machine_id, False)
        self.transport.on_machine_crash(machine_id)
        self.workers[machine_id].on_crash()
        for ex in self.executors.values():
            if ex.machine_id == machine_id:
                ex.halt()
        if self.reliability is not None:
            self.reliability.on_machine_crash(machine_id)
        if self.flow is not None:
            self.flow.on_machine_crash(machine_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fault.crash", self.sim.now, machine=machine_id)

    def recover_machine(self, machine_id: int) -> None:
        """Bring a crashed machine back (empty queues, fresh state)."""
        if machine_id not in self._crashed:
            raise RuntimeError(f"machine {machine_id} is not crashed")
        self._crashed.discard(machine_id)
        self.recovery_count += 1
        self.fabric.set_machine_up(machine_id, True)
        self.workers[machine_id].on_recover()
        for ex in self.executors.values():
            if ex.machine_id == machine_id:
                ex.resume_from_crash()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fault.recover", self.sim.now, machine=machine_id)

    # ------------------------------------------------------------------
    # overload events (flash crowds, gray failures)
    # ------------------------------------------------------------------
    def begin_flash_crowd(self, magnitude: float) -> None:
        """Multiply every spout's arrival rate by ``magnitude``."""
        if magnitude <= 0:
            raise ValueError("flash-crowd magnitude must be positive")
        self.load_factor = magnitude

    def end_flash_crowd(self) -> None:
        self.load_factor = 1.0

    def begin_slow_node(self, machine_id: int, magnitude: float) -> None:
        """Gray failure: inflate service times of every executor on one
        machine by ``magnitude`` (the machine stays up and acking)."""
        if magnitude <= 0:
            raise ValueError("slow-node magnitude must be positive")
        if machine_id not in self.workers:
            raise KeyError(f"unknown machine {machine_id}")
        for ex in self.executors.values():
            if ex.machine_id == machine_id:
                ex.service_scale = magnitude

    def end_slow_node(self, machine_id: int) -> None:
        for ex in self.executors.values():
            if ex.machine_id == machine_id:
                ex.service_scale = 1.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch every worker and executor process."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for worker in self.workers.values():
            worker.start()
        for ex in self.executors.values():
            ex.start()
        if self.reliability is not None:
            self.reliability.start()
        if self.flow is not None:
            self.flow.start()
        if self.rebalancer is not None:
            self.rebalancer.start()
        if self.fault_injector is not None:
            self.fault_injector.start()

    def run_measured(self, warmup_s: float, measure_s: float) -> MetricsHub:
        """Run warmup, then a measurement window; return the metrics hub."""
        if not self._started:
            self.start()
        if warmup_s > 0:
            self.sim.run(until=self.sim.now + warmup_s)
        self.metrics.open_window()
        self.sim.run(until=self.sim.now + measure_s)
        self.metrics.close_window()
        return self.metrics

    # ------------------------------------------------------------------
    # control-plane helper (used by the Whale controller)
    # ------------------------------------------------------------------
    def control_send(
        self, src_machine: int, dst_machine: int, payload, cpu_account
    ):
        """Send one control message (generator)."""
        size = self.serialization.control_message_bytes()
        yield from self.transport.send(
            src_machine, dst_machine, payload, size, cpu_account, kind="control"
        )

    # ------------------------------------------------------------------
    # convenience accessors for experiments
    # ------------------------------------------------------------------
    def source_executor(self, spout_name: str) -> SpoutExecutor:
        task = self.placement.tasks_of[spout_name][0]
        ex = self.executors[task]
        assert isinstance(ex, SpoutExecutor)
        return ex

    def operator_executors(self, operator: str) -> List[ExecutorBase]:
        return [self.executors[t] for t in self.placement.tasks_of[operator]]

    def traffic_bytes(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.fabric.bytes_by_kind.values())
        return self.fabric.bytes_by_kind.get(kind, 0)
