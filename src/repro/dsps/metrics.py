"""Metrics collection.

Implements the paper's Section 5.1 metric definitions:

* **throughput** — tuples processed per unit time (per operator, counted
  inside the measurement window);
* **processing latency** — time from a tuple entering the source to its
  full processing at the sink.  For one-to-many streams completion means
  *every* destination instance processed it (tracked by
  :class:`CompletionTracker`);
* **multicast latency** — time from tuple production until the *last*
  destination instance receives it (:class:`MulticastTracker`);
* **serialization / communication time** — CPU-category totals from the
  :class:`~repro.net.cpu.CpuAccount` registry;
* **communication traffic** — bytes on the wire per generated tuple,
  from the fabric counters.

A measurement window (``open_window`` / ``close_window``) excludes warmup
and drain phases from every rate and latency statistic.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass
class LatencySummary:
    """Summary statistics over recorded latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def from_samples(samples: List[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        arr = np.asarray(samples, dtype=np.float64)
        return LatencySummary(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )


class MulticastTracker:
    """Tracks per-tuple multicast completion (last destination receives).

    Pending state is the *set* of destination task ids still owed a copy,
    so a duplicated/retransmitted delivery to the same destination cannot
    decrement twice (which would complete the tuple early and record a
    too-short latency).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._pending: Dict[int, Tuple[float, set]] = {}
        self.latencies: List[float] = []
        self.completed = 0
        #: distinct tuples ever registered; with ``cancelled`` this gives
        #: the conservation identity checked by ``repro.check``:
        #: registered == completed + cancelled + outstanding.
        self.registered = 0
        self.cancelled = 0

    def register(
        self, tuple_id: int, destinations: Iterable[int], emit_time: float
    ) -> None:
        destinations = set(destinations)
        if not destinations:
            raise ValueError("destinations must be non-empty")
        entry = self._pending.get(tuple_id)
        if entry is None:
            self._pending[tuple_id] = (emit_time, destinations)
            self.registered += 1
        else:
            # A second one-to-many edge of the same emit: the tuple now
            # completes when the union of destinations has received it.
            entry[1].update(destinations)

    def on_receive(self, tuple_id: int, destination: int) -> None:
        entry = self._pending.get(tuple_id)
        if entry is None:
            return  # not a tracked tuple (e.g. emitted outside the window)
        emit_time, outstanding = entry
        if destination not in outstanding:
            return  # duplicate delivery (retransmission): already counted
        outstanding.discard(destination)
        if not outstanding:
            del self._pending[tuple_id]
            self.latencies.append(self.sim.now - emit_time)
            self.completed += 1

    def cancel(self, tuple_id: int) -> None:
        """Forget a tuple (it was dropped before reaching the wire)."""
        if self._pending.pop(tuple_id, None) is not None:
            self.cancelled += 1

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def summary(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies)


class CompletionTracker:
    """Tracks processing completion of one-to-many tuples: a root tuple is
    complete when every destination instance executed it.

    Like :class:`MulticastTracker`, pending state is the set of executor
    task ids still owed an execution, so duplicate executions of the same
    tuple at the same instance are counted once.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: root id -> [created_at, outstanding task ids, latest execution
        #: instant].  The explicit instant matters for batched dispatch:
        #: executors flush completed work lazily, so calls may arrive out
        #: of completion-time order — "the last instance executed it" is
        #: the running *max* of execution times, not the last call.
        self._pending: Dict[int, list] = {}
        self.latencies: List[float] = []
        self.completed = 0
        #: see :class:`MulticastTracker`: conservation counters for
        #: registered == completed + cancelled + outstanding.
        self.registered = 0
        self.cancelled = 0

    def register(
        self, root_id: int, destinations: Iterable[int], created_at: float
    ) -> None:
        destinations = set(destinations)
        if not destinations:
            raise ValueError("destinations must be non-empty")
        entry = self._pending.get(root_id)
        if entry is None:
            self._pending[root_id] = [created_at, destinations, -math.inf]
            self.registered += 1
        else:
            entry[1].update(destinations)

    def on_executed(
        self, root_id: int, destination: int, at: Optional[float] = None
    ) -> None:
        entry = self._pending.get(root_id)
        if entry is None:
            return
        created_at, outstanding, _latest = entry
        if destination not in outstanding:
            return  # duplicate execution at this instance
        outstanding.discard(destination)
        if at is None:
            at = self.sim.now
        if at > entry[2]:
            entry[2] = at
        if not outstanding:
            del self._pending[root_id]
            self.latencies.append(entry[2] - created_at)
            self.completed += 1

    def cancel(self, root_id: int) -> None:
        """Forget a root tuple (it was dropped before reaching the wire)."""
        if self._pending.pop(root_id, None) is not None:
            self.cancelled += 1

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def summary(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies)


class MetricsHub:
    """Central metric registry for one system run."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.emitted: Dict[str, int] = defaultdict(int)
        self.processed: Dict[str, int] = defaultdict(int)
        self.dropped: Dict[str, int] = defaultdict(int)
        self.sink_latencies: Dict[str, List[float]] = defaultdict(list)
        self.multicast = MulticastTracker(sim)
        self.completion = CompletionTracker(sim)
        #: tuple trees abandoned by the replay coordinator (budget
        #: exhausted or aborted).  NOT window-gated: the checker's
        #: conservation invariant needs every give-up ever recorded.
        self.messages_abandoned = 0
        #: envelopes discarded by a shed policy (flow control on, no
        #: reliability): refused newcomers plus evicted victims.  NOT
        #: window-gated — ``shed_conservation`` needs the full count.
        self.messages_shed = 0
        #: per-site breakdown of ``messages_shed``
        self.shed_by_queue: Dict[str, int] = defaultdict(int)
        #: reliable emits deferred (nacked back to the spout) because the
        #: transfer queue was full; each retry that still finds the queue
        #: full counts again.  NOT window-gated.
        self.messages_deferred = 0
        #: partitions parked / restored by the runtime rebalancer.  NOT
        #: window-gated: the ``partition_routing`` invariant and the
        #: hot-key ablation need every migration ever made.
        self.partitions_migrated = 0
        self.partitions_restored = 0
        # --- overload observability gauges (flow layer) ---------------
        #: high-water mark of the acker's in-flight tuple-tree count
        self.acker_pending_hwm = 0
        #: per-queue depth high-water marks observed by the flow layer
        self.queue_depth_hwm: Dict[str, int] = defaultdict(int)
        #: cumulative seconds each spout spent stalled on credits or the
        #: admission gate
        self.credit_stall_s: Dict[str, float] = defaultdict(float)
        self._window: Optional[Tuple[float, Optional[float]]] = None
        #: callbacks that realize lazily-batched work (batched-dispatch
        #: executors register here); run by :meth:`flush` so window
        #: boundaries and end-of-run reporting see every completion that
        #: is logically due.
        self._flush_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # measurement window
    # ------------------------------------------------------------------
    def open_window(self) -> None:
        self._window = (self.sim.now, None)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("metrics.window", self.sim.now, action="open")

    def add_flush_hook(self, hook: "Callable[[], None]") -> None:
        """Register a callback that realizes lazily-batched completions."""
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Realize every batched completion due at or before ``sim.now``."""
        for hook in self._flush_hooks:
            hook()

    def close_window(self) -> None:
        if self._window is None:
            raise RuntimeError("close_window() before open_window()")
        # Realize batched completions *before* the end is set, so work
        # that logically finished inside the window is counted in it.
        self.flush()
        start, _ = self._window
        self._window = (start, self.sim.now)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("metrics.window", self.sim.now, action="close")

    @property
    def in_window(self) -> bool:
        if self._window is None:
            return False
        start, end = self._window
        return self.sim.now >= start and (end is None or self.sim.now <= end)

    def in_window_at(self, t: float) -> bool:
        """Window membership of an explicit instant (for lazily-flushed
        completions whose logical time is not ``sim.now``)."""
        if self._window is None:
            return False
        start, end = self._window
        return t >= start and (end is None or t <= end)

    @property
    def window_duration(self) -> float:
        if self._window is None:
            raise RuntimeError("no measurement window opened")
        start, end = self._window
        return (end if end is not None else self.sim.now) - start

    # ------------------------------------------------------------------
    # recording (no-ops outside the window)
    # ------------------------------------------------------------------
    def on_emit(self, operator: str) -> None:
        if self.in_window:
            self.emitted[operator] += 1

    def on_processed(self, operator: str) -> None:
        if self.in_window:
            self.processed[operator] += 1

    def on_drop(self, where: str) -> None:
        if self.in_window:
            self.dropped[where] += 1

    def on_abandoned(self) -> None:
        """The replay coordinator gave up on (or aborted) a tuple tree."""
        self.messages_abandoned += 1

    def on_shed(self, where: str) -> None:
        """A shed policy discarded an envelope at ``where``."""
        self.messages_shed += 1
        self.shed_by_queue[where] += 1

    def on_deferred(self) -> None:
        """A reliable emit was nacked back to its spout (queue full)."""
        self.messages_deferred += 1

    def on_partition_migrated(self) -> None:
        """The rebalancer parked one overloaded task."""
        self.partitions_migrated += 1

    def on_partition_restored(self) -> None:
        """The rebalancer restored one drained task."""
        self.partitions_restored += 1

    def note_acker_pending(self, pending: int) -> None:
        if pending > self.acker_pending_hwm:
            self.acker_pending_hwm = pending

    def note_queue_depth(self, where: str, depth: int) -> None:
        if depth > self.queue_depth_hwm[where]:
            self.queue_depth_hwm[where] = depth

    def add_credit_stall(self, operator: str, stalled_s: float) -> None:
        self.credit_stall_s[operator] += stalled_s

    def on_sink_latency(self, operator: str, latency_s: float) -> None:
        if self.in_window:
            self.sink_latencies[operator].append(latency_s)

    # --- explicit-instant variants (batched-dispatch flush path) ------
    def on_processed_at(self, operator: str, t: float) -> None:
        if self.in_window_at(t):
            self.processed[operator] += 1

    def on_sink_latency_at(
        self, operator: str, latency_s: float, at: float
    ) -> None:
        if self.in_window_at(at):
            self.sink_latencies[operator].append(latency_s)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def throughput(self, operator: str) -> float:
        """Tuples processed per second inside the window (0.0 for a
        zero-duration window rather than a ``ZeroDivisionError``)."""
        duration = self.window_duration
        return self.processed[operator] / duration if duration > 0 else 0.0

    def emit_rate(self, operator: str) -> float:
        duration = self.window_duration
        return self.emitted[operator] / duration if duration > 0 else 0.0

    def sink_latency_summary(self, operator: str) -> LatencySummary:
        return LatencySummary.from_samples(self.sink_latencies[operator])
