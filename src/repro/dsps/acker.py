"""Storm's acker protocol: XOR-based tuple-tree completion tracking.

Storm (and therefore Whale) guarantees at-least-once processing by
tracking, per spout tuple, the *tuple tree* of everything derived from
it.  The trick that makes this O(1) memory per root: every edge of the
tree gets a random 64-bit id; the acker keeps one value per root — the
XOR of every edge id it has seen.  Each processed tuple acks by XOR-ing
(consumed edge id) ^ (ids of edges it emitted); since every edge id
enters the value exactly twice (once on emit, once on ack), the value
returns to zero exactly when the whole tree is processed.

This module implements the protocol exactly; it is exercised standalone
and available to topologies that want completion semantics stronger
than the metrics trackers.  Timeouts mark trees failed for replay
(at-least-once), mirroring ``TOPOLOGY_MESSAGE_TIMEOUT_SECS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class _TreeState:
    ack_val: int
    registered_at: float
    edges_seen: int = 0


@dataclass(frozen=True)
class TreeOutcome:
    """Completion report for one spout tuple."""

    root_id: int
    completed: bool  # False = timed out (failed, eligible for replay)
    latency_s: float
    edges_seen: int


class Acker:
    """One acker task.

    Parameters
    ----------
    now_fn:
        Clock source (e.g. ``lambda: sim.now``); injected so the
        protocol is testable without the DES.
    timeout_s:
        Trees older than this are failed on :meth:`sweep`.
    """

    def __init__(
        self,
        now_fn: Callable[[], float],
        timeout_s: float = 30.0,
        seed: int = 0,
    ):
        if timeout_s <= 0:
            raise ValueError(f"timeout must be positive, got {timeout_s}")
        self._now = now_fn
        self.timeout_s = timeout_s
        self._rng = np.random.default_rng(seed)
        self._trees: Dict[int, _TreeState] = {}
        self.completed: List[TreeOutcome] = []
        self.failed: List[TreeOutcome] = []

    # ------------------------------------------------------------------
    def new_edge_id(self) -> int:
        """A random non-zero 64-bit edge id."""
        while True:
            edge = int(self._rng.integers(1, 2**63, dtype=np.int64))
            if edge != 0:
                return edge

    def register(self, root_id: int, first_edge_id: int) -> None:
        """Spout-side: a new tuple tree rooted at ``root_id`` whose first
        edge (spout -> first consumer) is ``first_edge_id``."""
        if root_id in self._trees:
            raise ValueError(f"root {root_id} already registered")
        if first_edge_id == 0:
            raise ValueError("edge ids must be non-zero")
        self._trees[root_id] = _TreeState(
            ack_val=first_edge_id,
            registered_at=self._now(),
            edges_seen=1,
        )

    def ack(
        self,
        root_id: int,
        consumed_edge_id: int,
        emitted_edge_ids: Sequence[int] = (),
    ) -> Optional[TreeOutcome]:
        """Bolt-side: tuple on ``consumed_edge_id`` was processed and
        produced ``emitted_edge_ids``.  Returns the outcome if the tree
        completed, else ``None``."""
        state = self._trees.get(root_id)
        if state is None:
            return None  # already completed/failed (late ack is a no-op)
        val = state.ack_val ^ consumed_edge_id
        for edge in emitted_edge_ids:
            if edge == 0:
                raise ValueError("edge ids must be non-zero")
            val ^= edge
            state.edges_seen += 1
        state.ack_val = val
        if val == 0:
            del self._trees[root_id]
            outcome = TreeOutcome(
                root_id=root_id,
                completed=True,
                latency_s=self._now() - state.registered_at,
                edges_seen=state.edges_seen,
            )
            self.completed.append(outcome)
            return outcome
        return None

    def fail(self, root_id: int) -> Optional[TreeOutcome]:
        """Explicitly fail a tree (e.g. a bolt raised)."""
        state = self._trees.pop(root_id, None)
        if state is None:
            return None
        outcome = TreeOutcome(
            root_id=root_id,
            completed=False,
            latency_s=self._now() - state.registered_at,
            edges_seen=state.edges_seen,
        )
        self.failed.append(outcome)
        return outcome

    def sweep(self) -> List[TreeOutcome]:
        """Fail every tree older than the timeout; returns the failures."""
        now = self._now()
        expired = [
            root
            for root, state in self._trees.items()
            if now - state.registered_at >= self.timeout_s
        ]
        return [self.fail(root) for root in expired]  # type: ignore[misc]

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._trees)

    def pending_roots(self) -> List[int]:
        return list(self._trees)


class AnchoredEmitter:
    """Bolt-side helper producing correctly-anchored ack calls.

    Usage per executed tuple::

        emitter = AnchoredEmitter(acker, root_id, consumed_edge_id)
        child_edge = emitter.emit()        # one per downstream tuple
        emitter.done()                     # after user logic returns
    """

    def __init__(self, acker: Acker, root_id: int, consumed_edge_id: int):
        self.acker = acker
        self.root_id = root_id
        self.consumed_edge_id = consumed_edge_id
        self._emitted: List[int] = []
        self._done = False

    def emit(self) -> int:
        if self._done:
            raise RuntimeError("emit() after done()")
        edge = self.acker.new_edge_id()
        self._emitted.append(edge)
        return edge

    def done(self) -> Optional[TreeOutcome]:
        if self._done:
            raise RuntimeError("done() called twice")
        self._done = True
        return self.acker.ack(self.root_id, self.consumed_edge_id, self._emitted)
