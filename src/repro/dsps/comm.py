"""Communication modes: how an emitted tuple crosses the cluster.

Three mechanisms, matching the paper's design space:

* **Instance-oriented** (Storm, RDMA-based Storm): the data item is
  serialized once *per destination instance* and sent as an independent
  message.  (As a pure event-count optimization, messages of one emit
  bound for the same machine are coalesced into one wire packet whose
  size/CPU equal the sum of the individual messages — the economics are
  bit-identical to sending them back to back.)
* **Worker-oriented** (Whale, Section 3.5): destinations are grouped by
  worker; the data item is serialized once per *worker* into a
  ``BatchTuple`` whose header carries the destination task ids; the
  receiving worker's dispatcher fans it out locally.
* **Relay multicast** (Section 3.2): a :class:`MulticastService` holds a
  multicast tree over *endpoints* (workers, or instances for the RDMC
  baseline); the source sends only to the root's children and each
  endpoint's worker relays the already-serialized bytes onward.

Stream slicing (MMS/WTL, Section 4) wraps the RDMA data path when
enabled: serialized messages to the same machine are buffered and posted
as a single work request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.multicast import (
    MulticastTree,
    SOURCE,
    build_binomial_tree,
    build_nonblocking_tree,
    build_sequential_tree,
    plan_reattach,
    plan_repair,
)
from repro.net import cpu as cats
from repro.net.slicing import StreamSlicer
from repro.dsps.tuples import AddressedTuple, StreamTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsps.executor import Executor
    from repro.dsps.system import DspsSystem
    from repro.dsps.worker import Worker


# ----------------------------------------------------------------------
# outbound envelope (what sits in an executor's transfer queue)
# ----------------------------------------------------------------------
@dataclass
class Envelope:
    """One emitted tuple plus its routing decision."""

    tuple: StreamTuple
    dst_operator: str
    dst_tasks: List[int]
    #: True when this envelope came from a one-to-many (all) grouping.
    one_to_many: bool = False
    #: True for a selective replay (exactly-once point repair): deliver
    #: only to ``dst_tasks``, bypassing the multicast tree.
    selective: bool = False


# ----------------------------------------------------------------------
# wire packet payloads
# ----------------------------------------------------------------------
@dataclass
class InstancePacket:
    """Coalesced instance-oriented messages for one machine: each entry is
    an independently-serialized single-destination message."""

    tuples: List[AddressedTuple]
    deserialize_cpu_s: float  # total for all entries

    def deliver(self, worker: "Worker", charge_deser: bool = True) -> Iterator:
        if charge_deser:
            yield from worker.cpu.work(
                self.deserialize_cpu_s, cats.DESERIALIZATION
            )
        for at in self.tuples:
            worker.dispatch_local(at)


@dataclass
class WorkerPacket:
    """One Whale WorkerMessage: data item serialized once + dstIds."""

    tuple: StreamTuple
    dst_tasks: List[int]
    deserialize_cpu_s: float
    #: relay coordinates: (service, endpoint id) when part of a multicast.
    relay: Optional[Tuple["MulticastService", Any]] = None

    def deliver(self, worker: "Worker", charge_deser: bool = True) -> Iterator:
        if charge_deser:
            yield from worker.cpu.work(
                self.deserialize_cpu_s, cats.DESERIALIZATION
            )
        for task_id in self.dst_tasks:
            worker.dispatch_local(AddressedTuple(task_id, self.tuple))
        if self.relay is not None:
            service, endpoint = self.relay
            yield from service.relay_from(worker, endpoint, self.tuple)


@dataclass
class PacketGroup:
    """Several packets delivered in one sliced work request."""

    packets: List[Any]

    def deliver(self, worker: "Worker") -> Iterator:
        for packet in self.packets:
            yield from packet.deliver(worker)


# ----------------------------------------------------------------------
# multicast service
# ----------------------------------------------------------------------
class MulticastService:
    """Shared relay state for one one-to-many edge (src task -> operator).

    Endpoints are ``("w", machine_id)`` for worker-level trees (Whale) or
    ``("t", task_id)`` for instance-level trees (the RDMC baseline without
    worker-oriented communication).
    """

    def __init__(
        self,
        system: "DspsSystem",
        src_task: int,
        dst_operator: str,
        structure: str,
        d_star: int,
        worker_level: bool,
    ):
        self.system = system
        self.src_task = src_task
        self.dst_operator = dst_operator
        self.structure = structure
        self.d_star = d_star
        self.worker_level = worker_level
        placement = system.placement
        dst_tasks = placement.tasks_of[dst_operator]
        src_machine = placement.machine_of[src_task]
        self._tasks_of_endpoint: Dict[Any, List[int]] = {}
        self._machine_of_endpoint: Dict[Any, int] = {}
        if worker_level:
            for machine in placement.machines_hosting(dst_operator):
                ep = ("w", machine)
                self._tasks_of_endpoint[ep] = placement.colocated_tasks(
                    dst_operator, machine
                )
                self._machine_of_endpoint[ep] = machine
        else:
            for task in dst_tasks:
                ep = ("t", task)
                self._tasks_of_endpoint[ep] = [task]
                self._machine_of_endpoint[ep] = placement.machine_of[task]
        self.src_machine = src_machine
        self.tree = self._build(list(self._tasks_of_endpoint))
        #: event set while a dynamic switch is in progress (source pauses).
        self.paused_until = None  # type: Optional[Any]
        self.switch_count = 0
        #: endpoints excised from the tree because their machine is
        #: suspected/crashed; restored on recovery.
        self._detached: set = set()
        self.repair_count = 0
        self.reattach_count = 0

    # ------------------------------------------------------------------
    def _build(self, endpoints: Sequence[Any]) -> MulticastTree:
        if self.structure == "sequential":
            return build_sequential_tree(endpoints)
        if self.structure == "binomial":
            return build_binomial_tree(endpoints)
        if self.structure == "nonblocking":
            return build_nonblocking_tree(endpoints, d_star=self.d_star)
        raise ValueError(f"unknown structure {self.structure!r}")

    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> List[Any]:
        return list(self._tasks_of_endpoint)

    @property
    def active_endpoints(self) -> List[Any]:
        """Endpoints currently wired into the tree (not detached)."""
        return [
            ep for ep in self._tasks_of_endpoint if ep not in self._detached
        ]

    def endpoints_on_machine(self, machine_id: int) -> List[Any]:
        return [
            ep
            for ep, m in self._machine_of_endpoint.items()
            if m == machine_id
        ]

    def tasks_of(self, endpoint: Any) -> List[int]:
        return self._tasks_of_endpoint[endpoint]

    def machine_of(self, endpoint: Any) -> int:
        return self._machine_of_endpoint[endpoint]

    def root_children(self) -> List[Any]:
        return self.tree.children(SOURCE)

    def source_out_degree(self) -> int:
        return self.tree.out_degree(SOURCE)

    # ------------------------------------------------------------------
    def send_from_source(
        self, executor: "Executor", tup: StreamTuple
    ) -> Iterator:
        """Source side: transmit ``tup`` to the root's direct children."""
        if self.paused_until is not None and not self.paused_until.processed:
            # Dynamic switching in progress: output rate drops to zero
            # until the structure settles (Theorem 4's premise).
            yield self.paused_until
        comm = self.system.comm
        for child in self.tree.children(SOURCE):
            yield from comm.send_to_endpoint(
                executor.cpu,
                self.src_machine,
                self,
                child,
                tup,
                serialize=True,
            )

    def relay_from(
        self, worker: "Worker", endpoint: Any, tup: StreamTuple
    ) -> Iterator:
        """Relay side: forward already-serialized bytes to children."""
        if endpoint not in self.tree:
            # Stale in-flight packet: the endpoint was repaired out of
            # the tree while this message was on the wire.  Local
            # dispatch already happened; nothing left to relay.
            return
        comm = self.system.comm
        for child in self.tree.children(endpoint):
            yield from comm.send_to_endpoint(
                worker.cpu,
                self.machine_of(endpoint),
                self,
                child,
                tup,
                serialize=False,
            )

    # ------------------------------------------------------------------
    def apply_tree(self, new_tree: MulticastTree) -> None:
        """Install a rewired tree (same endpoint set)."""
        if sorted(map(repr, new_tree.destinations())) != sorted(
            map(repr, self.tree.destinations())
        ):
            raise ValueError("rewired tree changes the endpoint set")
        self.tree = new_tree
        self.switch_count += 1

    # ------------------------------------------------------------------
    # failure repair (tree self-healing)
    # ------------------------------------------------------------------
    def detach_endpoint(self, endpoint: Any):
        """Excise a failed endpoint, reattaching its orphaned subtrees.

        Returns the :class:`~repro.multicast.SwitchPlan` applied, or
        ``None`` when the endpoint was already detached.  Each applied
        rewire is traced as ``switch.repair``.
        """
        if endpoint not in self._tasks_of_endpoint:
            raise ValueError(f"unknown endpoint {endpoint!r}")
        if endpoint in self._detached or endpoint not in self.tree:
            return None
        new_tree, plan = plan_repair(self.tree, endpoint, self.d_star)
        self.tree = new_tree
        self._detached.add(endpoint)
        self.repair_count += 1
        self._trace_repair(plan, endpoint)
        return plan

    def reattach_endpoint(self, endpoint: Any):
        """Re-admit a recovered endpoint as a leaf; returns the plan
        applied, or ``None`` when the endpoint was never detached."""
        if endpoint not in self._tasks_of_endpoint:
            raise ValueError(f"unknown endpoint {endpoint!r}")
        if endpoint not in self._detached:
            return None
        new_tree, plan = plan_reattach(self.tree, endpoint, self.d_star)
        self.tree = new_tree
        self._detached.discard(endpoint)
        self.reattach_count += 1
        self._trace_repair(plan, endpoint)
        return plan

    def _trace_repair(self, plan, endpoint: Any) -> None:
        tracer = self.system.sim.tracer
        if tracer is None:
            return
        now = self.system.sim.now
        for op in plan.ops:
            tracer.emit(
                "switch.repair",
                now,
                direction=plan.status,
                endpoint=endpoint,
                node=op.node,
                old_parent=op.old_parent,
                new_parent=op.new_parent,
                src_task=self.src_task,
                dst_operator=self.dst_operator,
            )
        if not plan.ops:
            # A leaf failure detaches with zero rewires; still record it.
            tracer.emit(
                "switch.repair",
                now,
                direction=plan.status,
                endpoint=endpoint,
                node=endpoint,
                old_parent=None,
                new_parent=None,
                src_task=self.src_task,
                dst_operator=self.dst_operator,
            )


# ----------------------------------------------------------------------
# the communication engine
# ----------------------------------------------------------------------
class CommEngine:
    """Implements the configured communication mode for a system."""

    def __init__(self, system: "DspsSystem"):
        self.system = system
        self.config = system.config
        self.costs = system.costs
        self.ser = system.serialization
        # (src executor id, dst machine) -> slicer, when slicing is on.
        self._slicers: Dict[Tuple[int, int], StreamSlicer] = {}

    def _trace_serialize(
        self, src_machine: int, dst_machine: int, nbytes: int,
        cpu_s: float, n_messages: int = 1,
    ) -> None:
        tracer = self.system.sim.tracer
        if tracer is not None:
            tracer.emit(
                "net.serialize",
                self.system.sim.now,
                src=src_machine,
                dst=dst_machine,
                bytes=nbytes,
                cpu_s=cpu_s,
                n_messages=n_messages,
            )

    # ------------------------------------------------------------------
    # top-level send (called by the executor's send thread)
    # ------------------------------------------------------------------
    def send(self, executor: "Executor", env: Envelope) -> Iterator:
        """Transmit one envelope.  Returns the number of direct
        transmissions the source performed (its effective out-degree)."""
        service = self.system.multicast_service(executor.task_id, env.dst_operator)
        if env.one_to_many and service is not None and not env.selective:
            yield from service.send_from_source(executor, env.tuple)
            return service.source_out_degree()
        if self.config.worker_oriented:
            n = yield from self._send_worker_oriented(executor, env)
        else:
            n = yield from self._send_instance_oriented(executor, env)
        return n

    # ------------------------------------------------------------------
    def _send_instance_oriented(
        self, executor: "Executor", env: Envelope
    ) -> Iterator:
        placement = self.system.placement
        src_machine = executor.machine_id
        by_machine: Dict[int, List[int]] = {}
        for task in env.dst_tasks:
            by_machine.setdefault(placement.machine_of[task], []).append(task)
        sends = 0
        for machine, tasks in sorted(by_machine.items()):
            if machine == src_machine:
                # Intra-worker transfer: no serialization, no network.
                yield from executor.cpu.work(
                    self.costs.dispatch_cpu_s * len(tasks), cats.DISPATCH
                )
                for task in tasks:
                    self.system.workers[machine].dispatch_local(
                        AddressedTuple(task, env.tuple)
                    )
                continue
            # One serialization + one network send *per destination task*.
            n = len(tasks)
            msg_bytes = self.ser.instance_message_bytes(env.tuple.payload_bytes)
            serialize_cpu = n * self.costs.serialize_time(msg_bytes)
            yield from executor.cpu.work(serialize_cpu, cats.SERIALIZATION)
            self._trace_serialize(src_machine, machine, n * msg_bytes, serialize_cpu, n)
            packet = InstancePacket(
                tuples=[AddressedTuple(t, env.tuple) for t in tasks],
                deserialize_cpu_s=n * self.costs.deserialize_time(msg_bytes),
            )
            yield from self._transmit(
                executor.cpu,
                src_machine,
                machine,
                packet,
                size_bytes=n * msg_bytes,
                n_messages=n,
            )
            sends += n
        return sends

    # ------------------------------------------------------------------
    def _send_worker_oriented(
        self, executor: "Executor", env: Envelope
    ) -> Iterator:
        placement = self.system.placement
        src_machine = executor.machine_id
        by_machine: Dict[int, List[int]] = {}
        for task in env.dst_tasks:
            by_machine.setdefault(placement.machine_of[task], []).append(task)
        sends = 0
        for machine, tasks in sorted(by_machine.items()):
            if machine == src_machine:
                yield from executor.cpu.work(
                    self.costs.dispatch_cpu_s * len(tasks), cats.DISPATCH
                )
                for task in tasks:
                    self.system.workers[machine].dispatch_local(
                        AddressedTuple(task, env.tuple)
                    )
                continue
            yield from self._send_batch(
                executor.cpu, src_machine, machine, env.tuple, tasks,
                serialize=True, relay=None,
            )
            sends += 1
        return sends

    def _send_batch(
        self,
        cpu_account,
        src_machine: int,
        dst_machine: int,
        tup: StreamTuple,
        tasks: List[int],
        serialize: bool,
        relay: Optional[Tuple[MulticastService, Any]],
    ) -> Iterator:
        """Serialize (optionally) and transmit one BatchTuple."""
        msg_bytes = self.ser.batch_message_bytes(tup.payload_bytes, len(tasks))
        if serialize:
            serialize_cpu = self.ser.serialize_batch_message(
                tup.payload_bytes, len(tasks)
            )
            yield from cpu_account.work(serialize_cpu, cats.SERIALIZATION)
            self._trace_serialize(src_machine, dst_machine, msg_bytes, serialize_cpu)
        packet = WorkerPacket(
            tuple=tup,
            dst_tasks=list(tasks),
            deserialize_cpu_s=self.costs.deserialize_time(msg_bytes),
            relay=relay,
        )
        yield from self._transmit(
            cpu_account, src_machine, dst_machine, packet,
            size_bytes=msg_bytes, n_messages=1,
        )

    # ------------------------------------------------------------------
    # multicast endpoint send (source or relay)
    # ------------------------------------------------------------------
    def send_to_endpoint(
        self,
        cpu_account,
        src_machine: int,
        service: MulticastService,
        endpoint: Any,
        tup: StreamTuple,
        serialize: bool,
    ) -> Iterator:
        dst_machine = service.machine_of(endpoint)
        tasks = service.tasks_of(endpoint)
        if self.config.worker_oriented:
            yield from self._send_batch(
                cpu_account, src_machine, dst_machine, tup, tasks,
                serialize=serialize, relay=(service, endpoint),
            )
        else:
            # Instance-level tree (RDMC baseline): single-destination
            # message; serialization per message when not relaying.
            msg_bytes = self.ser.instance_message_bytes(tup.payload_bytes)
            if serialize:
                serialize_cpu = self.costs.serialize_time(msg_bytes)
                yield from cpu_account.work(serialize_cpu, cats.SERIALIZATION)
                self._trace_serialize(
                    src_machine, dst_machine, msg_bytes, serialize_cpu
                )
            packet = WorkerPacket(
                tuple=tup,
                dst_tasks=list(tasks),
                deserialize_cpu_s=self.costs.deserialize_time(msg_bytes),
                relay=(service, endpoint),
            )
            yield from self._transmit(
                cpu_account, src_machine, dst_machine, packet,
                size_bytes=msg_bytes, n_messages=1,
            )

    # ------------------------------------------------------------------
    # transport shim (+ optional slicing)
    # ------------------------------------------------------------------
    def _transmit(
        self,
        cpu_account,
        src_machine: int,
        dst_machine: int,
        packet: Any,
        size_bytes: int,
        n_messages: int,
    ) -> Iterator:
        if src_machine == dst_machine:
            # Same machine: hand straight to the local worker.
            worker = self.system.workers[dst_machine]
            yield from packet.deliver(worker)
            return
        transport = self.system.transport
        if self.config.slicing and self.config.transport == "rdma":
            self._slice(cpu_account, src_machine, dst_machine, packet, size_bytes)
            return
        if self.config.transport == "tcp":
            # The kernel path runs once per message even when coalesced.
            yield from cpu_account.work(
                self.costs.tcp_send_cpu_s * (n_messages - 1), cats.NETWORK
            )
            yield from transport.send(
                src_machine, dst_machine, packet, size_bytes, cpu_account
            )
        else:
            prof = transport.profile(transport.data_verb)
            yield from cpu_account.work(
                prof.sender_cpu_s * (n_messages - 1), cats.RDMA_POST
            )
            yield from transport.send(
                src_machine, dst_machine, packet, size_bytes, cpu_account
            )

    def _slice(
        self, cpu_account, src_machine: int, dst_machine: int,
        packet: Any, size_bytes: int,
    ) -> None:
        key = (src_machine, dst_machine)
        slicer = self._slicers.get(key)
        if slicer is None:
            slicer = StreamSlicer(
                self.system.sim,
                mms_bytes=self.config.costs.mms_bytes,
                wtl_s=self.config.costs.wtl_s,
                on_flush=lambda items, nbytes, k=key: self._flush(k, items, nbytes),
            )
            self._slicers[key] = slicer
        # The per-tuple recv-side cost rides inside the packet; the WR post
        # cost is paid once per flush (charged to the flusher below).
        slicer.add((packet, cpu_account), size_bytes)

    def _flush(self, key: Tuple[int, int], items: List[Any], nbytes: int) -> None:
        src_machine, dst_machine = key
        transport = self.system.transport
        packets = [p for p, _ in items]
        # Charge the post cost to the account of the last contributor
        # (whoever's add() triggered the flush, or the timer's victim).
        cpu_account = items[-1][1]
        group = PacketGroup(packets)

        def _post(sim):
            yield from transport.send(
                src_machine, dst_machine, group, nbytes, cpu_account
            )

        self.system.sim.process(_post(self.system.sim))

    def flush_all_slicers(self) -> None:
        """Flush pending slices (end of run)."""
        for slicer in self._slicers.values():
            slicer.flush_now()
