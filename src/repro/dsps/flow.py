"""End-to-end overload protection: credits, admission, shedding, replay
budget.

Enabled by ``SystemConfig.flow``, the :class:`FlowController` closes the
gap between the RDMA ring-memory backpressure at the bottom of the stack
and the unbounded producers at the top.  Four mechanisms, one object:

* **receiver-driven credits** — a one-to-many send waits in the sending
  thread until every live destination's input queue plus the sender's
  outstanding (granted-but-undelivered) reservations fit inside
  ``credit_window``.  Overload propagates *up* the multicast tree as
  stalled senders instead of *down* as queue growth (the Storm dataplane
  paper's receiver-driven design);
* **spout admission gate** — Storm's ``TOPOLOGY_MAX_SPOUT_PENDING``: when
  a reliability layer tracks in-flight tuple trees, spouts pause while
  the acker's pending count is at ``max_spout_pending``;
* **load shedding / defer-and-nack** — a full transfer queue sheds under
  the configured policy (``drop_tail`` / ``drop_head`` / ``random``)
  when delivery is best-effort, and *defers* the emit back to the spout
  (to be retried once the sending thread drains a slot) when a
  reliability layer must not lose accepted tuples;
* **replay budget** — a global token bucket caps the replay rate after
  crashes, and a congestion signal (how often the bucket ran dry)
  multiplies into the per-tree exponential backoff, so recovery under
  load degrades to slower replays instead of a replay storm.

Everything is deterministic: waiters are FIFO, wakeups ride the ordinary
event queue, the random shed policy draws from the seeded ``"shed"``
stream, and a fixed-period watchdog provides the lost-wakeup safety net
(plus self-healing of credit reservations leaked by message loss).
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque, Dict, Tuple

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsps.comm import Envelope
    from repro.dsps.executor import ExecutorBase, SpoutExecutor
    from repro.dsps.system import DspsSystem


class FlowController:
    """All overload-protection state and gates for one system run."""

    def __init__(self, system: "DspsSystem"):
        self.system = system
        self.sim = system.sim
        self.config = system.config
        self.metrics = system.metrics
        #: granted-but-undelivered multicast copies per destination task
        self.in_flight: Dict[int, int] = defaultdict(int)
        #: last grant/dispatch instant per task (stale-reservation healing)
        self._last_activity: Dict[int, float] = {}
        # FIFO waiter pools; every wake re-checks its own condition.
        self._credit_waiters: Deque[Event] = deque()
        self._admission_waiters: Deque[Event] = deque()
        self._space_waiters: Deque[Event] = deque()
        # --- conservation / observability counters ---------------------
        self.shed_refusals = 0  #: drop_tail refusals of the newcomer
        self.shed_evictions = 0  #: drop_head/random victims ejected
        self.deferred = 0  #: reliable emits nacked back to their spout
        self.credit_stalls = 0  #: completed credit/admission waits
        self.replays_granted = 0
        self.replays_throttled = 0
        #: replay-congestion level: throttles raise it, clean grants decay
        self.congestion = 0
        self._replay_next_slot = -math.inf
        self._rng = system.rng.stream("shed")

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.process(self._watchdog())

    def _watchdog(self):
        """Fixed-period safety net: re-wakes every waiter (conditions are
        re-checked by the waiters themselves) and heals credit
        reservations leaked by lost messages."""
        poll = self.config.flow_poll_interval_s
        while True:
            yield self.sim.timeout(poll)
            self._heal_stale_reservations()
            self._wake(self._credit_waiters)
            self._wake(self._admission_waiters)
            self._wake(self._space_waiters)

    @staticmethod
    def _wake(waiters: Deque[Event]) -> None:
        while waiters:
            waiters.popleft().succeed()

    def _heal_stale_reservations(self) -> None:
        horizon = 10.0 * self.config.flow_poll_interval_s
        now = self.sim.now
        for task, count in self.in_flight.items():
            if count > 0 and now - self._last_activity.get(task, now) > horizon:
                # No grant or delivery touched this task for many polls:
                # the copies died on the wire (loss, crash races).
                self.in_flight[task] = 0

    # ------------------------------------------------------------------
    # receiver-driven credits (one-to-many sends)
    # ------------------------------------------------------------------
    def _inqueue_depth(self, task: int) -> int:
        executor = self.system.executors.get(task)
        if executor is None:
            return 0
        inqueue = getattr(executor, "inqueue", None)
        if inqueue is None:
            return 0
        depth = inqueue.level
        fifo = getattr(executor, "_fifo", None)
        if fifo:
            depth += len(fifo)
        return depth

    def credits_available(self, env: "Envelope") -> bool:
        """Would a send of ``env`` fit every live destination's window?"""
        window = self.config.credit_window
        system = self.system
        machine_of = system.placement.machine_of
        for task in env.dst_tasks:
            if system.machine_is_crashed(machine_of[task]):
                continue  # fail-stop: dead destinations need no credit
            if self._inqueue_depth(task) + self.in_flight[task] >= window:
                return False
        return True

    def acquire_send_credit(self, executor: "ExecutorBase", env: "Envelope"):
        """Block the sending thread until ``env`` has credit everywhere.

        Reserves one in-flight slot per destination on grant; the
        reservation is returned by :meth:`on_dispatch` when the copy
        lands in the destination's input queue.
        """
        waited_from = None
        while not self.credits_available(env):
            if executor.halted:
                return  # crashed mid-stall: the envelope dies unsent
            if waited_from is None:
                waited_from = self.sim.now
            ev = self.sim.event()
            self._credit_waiters.append(ev)
            yield ev
        if executor.halted:
            return
        now = self.sim.now
        machine_of = self.system.placement.machine_of
        for task in env.dst_tasks:
            if self.system.machine_is_crashed(machine_of[task]):
                continue  # never dispatched: reserving would just leak
            self.in_flight[task] += 1
            self._last_activity[task] = now
        if waited_from is not None:
            self._record_stall(
                executor.operator, "flow.credit_stall", waited_from,
                task=executor.task_id,
            )

    def on_dispatch(self, executor) -> None:
        """A multicast copy reached ``executor``'s input queue: return the
        credit reservation and re-check stalled senders."""
        task = executor.task_id
        count = self.in_flight[task]
        if count > 0:
            self.in_flight[task] = count - 1
        self._last_activity[task] = self.sim.now
        self.metrics.note_queue_depth(
            f"{executor.operator}.inqueue", self._inqueue_depth(task)
        )
        self._wake(self._credit_waiters)

    def on_execute(self, task: int) -> None:
        """A destination consumed one input-queue slot: credits freed."""
        if self._credit_waiters:
            self._wake(self._credit_waiters)

    # ------------------------------------------------------------------
    # spout admission gate (max_spout_pending)
    # ------------------------------------------------------------------
    def admission_open(self) -> bool:
        limit = self.config.max_spout_pending
        reliability = self.system.reliability
        if limit is None or reliability is None:
            return True
        return reliability.outstanding < limit

    def admission_gate(self, spout: "SpoutExecutor"):
        """Block the arrival loop while the acker is at its pending cap."""
        waited_from = None
        while not self.admission_open():
            if spout.halted or spout._stop:
                return
            if waited_from is None:
                waited_from = self.sim.now
            ev = self.sim.event()
            self._admission_waiters.append(ev)
            yield ev
        if waited_from is not None:
            self._record_stall(
                spout.operator, "flow.admission_stall", waited_from,
                task=spout.task_id,
            )

    def on_pending_change(self) -> None:
        """The acker settled a tree: re-check gated spouts."""
        if self._admission_waiters and self.admission_open():
            self._wake(self._admission_waiters)

    # ------------------------------------------------------------------
    # defer-and-nack (reliable emits at a full transfer queue)
    # ------------------------------------------------------------------
    def on_defer(self, executor: "ExecutorBase", tuple_id: int) -> None:
        self.deferred += 1
        self.metrics.on_deferred()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "flow.defer",
                self.sim.now,
                id=tuple_id,
                operator=executor.operator,
                task=executor.task_id,
            )

    def wait_for_transfer_space(self, executor: "ExecutorBase", slots: int = 1):
        """Block until ``executor``'s transfer queue has ``slots`` free."""
        queue = executor.transfer_queue
        waited_from = None
        while queue.capacity - queue.level < slots:
            if executor.halted or getattr(executor, "_stop", False):
                return
            if waited_from is None:
                waited_from = self.sim.now
            ev = self.sim.event()
            self._space_waiters.append(ev)
            yield ev
        if waited_from is not None:
            self._record_stall(
                executor.operator, "flow.credit_stall", waited_from,
                task=executor.task_id,
            )

    def on_transfer_drain(self) -> None:
        """A sending thread freed a transfer-queue slot."""
        if self._space_waiters:
            self._wake(self._space_waiters)

    # ------------------------------------------------------------------
    # load shedding (best-effort emits at a full transfer queue)
    # ------------------------------------------------------------------
    def shed_offer(self, executor: "ExecutorBase", env: "Envelope") -> bool:
        """Apply the shed policy to a refused ``try_put``.

        Returns ``True`` when the newcomer was enqueued after evicting a
        victim (``drop_head``/``random``), ``False`` when the newcomer
        itself was shed (``drop_tail``, or nothing evictable).  Either
        way exactly one envelope is counted in ``messages_shed``.
        """
        queue = executor.transfer_queue
        where = f"{executor.operator}.transfer_queue"
        policy = self.config.shed_policy
        tracer = self.sim.tracer
        if policy == "drop_tail" or queue.level == 0:
            self.shed_refusals += 1
            self.metrics.on_shed(where)
            if tracer is not None:
                tracer.emit(
                    "shed.drop",
                    self.sim.now,
                    id=env.tuple.tuple_id,
                    where=where,
                    policy=policy,
                )
            return False
        if policy == "drop_head":
            index = 0
        else:  # seeded-random victim
            index = int(self._rng.integers(queue.level))
        # Count the eviction before performing it: evict() emits a trace
        # record, and the state-scope shed_conservation invariant must
        # see the flow/metrics/queue counters move together.
        self.shed_evictions += 1
        self.metrics.on_shed(where)
        victim: "Envelope" = queue.evict(index)
        if victim.one_to_many:
            self.metrics.multicast.cancel(victim.tuple.tuple_id)
            self.metrics.completion.cancel(victim.tuple.tuple_id)
        if tracer is not None:
            tracer.emit(
                "shed.evict",
                self.sim.now,
                id=victim.tuple.tuple_id,
                where=where,
                policy=policy,
                admitted=env.tuple.tuple_id,
            )
        return executor.transfer_queue.try_put(env)

    # ------------------------------------------------------------------
    # replay budget (token bucket + congestion signal)
    # ------------------------------------------------------------------
    def replay_gate(self) -> Tuple[float, int]:
        """Claim one replay token.

        Returns ``(extra_delay_s, congestion)``: the wait until this
        replay's bucket slot, and the current congestion level for the
        caller's multiplicative backoff.  Deterministic leaky bucket:
        slot ``k`` is at least ``k / rate`` after slot ``k - burst``.
        """
        rate = self.config.replay_rate_per_s
        burst = self.config.replay_burst
        now = self.sim.now
        earliest = max(self._replay_next_slot, now - (burst - 1) / rate)
        delay = earliest - now
        self._replay_next_slot = earliest + 1.0 / rate
        if delay > 0:
            self.replays_throttled += 1
            if self.congestion < 8:
                self.congestion += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "flow.replay_throttle",
                    now,
                    delay_s=delay,
                    congestion=self.congestion,
                )
        else:
            delay = 0.0
            self.replays_granted += 1
            if self.congestion > 0:
                self.congestion -= 1
        return delay, self.congestion

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def on_machine_crash(self, machine_id: int) -> None:
        """Return reservations of every destination on the dead machine
        (their queues were cleared; fail-stop excuses the copies)."""
        machine_of = self.system.placement.machine_of
        for task in list(self.in_flight):
            if machine_of[task] == machine_id:
                self.in_flight[task] = 0
        self._wake(self._credit_waiters)

    # ------------------------------------------------------------------
    def _record_stall(
        self, operator: str, kind: str, waited_from: float, task: int
    ) -> None:
        stalled_s = self.sim.now - waited_from
        self.credit_stalls += 1
        self.metrics.add_credit_stall(operator, stalled_s)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(kind, self.sim.now, operator=operator, task=task,
                        waited_s=stalled_s)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Counters for reports and the ``shed_conservation`` invariant."""
        return {
            "shed_refusals": self.shed_refusals,
            "shed_evictions": self.shed_evictions,
            "deferred": self.deferred,
            "credit_stalls": self.credit_stalls,
            "replays_granted": self.replays_granted,
            "replays_throttled": self.replays_throttled,
            "congestion": self.congestion,
        }
