"""Delivery semantics: acker-driven replay, dedup, and atomic multicast.

The :class:`ReplayCoordinator` implements every delivery guarantee of
``SystemConfig.delivery`` behind one interface, wiring Storm's XOR
:class:`~repro.dsps.acker.Acker` into the spout's emission path:

* **at_least_once** — when a spout emits a one-to-many tuple, the
  coordinator registers a tuple tree with one edge per destination task;
  each destination's execution sends an :class:`AckMessage` over the
  control plane to the acker's machine (real traffic, so ack overhead
  shows up in the fabric counters).  A periodic sweep fails trees older
  than ``ack_timeout_s`` and replays the *whole* envelope from the spout
  with jittered exponential backoff, up to ``max_replays`` attempts.
  Replays re-execute everywhere (Storm semantics); the set-based metrics
  trackers dedup so duplicates never inflate throughput.
* **exactly_once** — at-least-once plus a per-destination dedup table:
  a replayed tuple already executed at task T is *acked but not
  re-executed* (the idempotent-execution contract), and replays are
  *selective* — only the destinations whose acks are missing (the
  ``acked_tasks`` set) are re-delivered, point-to-point rather than down
  the multicast tree.  Epoch barriers flow through the spout's
  registration path: every ``epoch_interval_s`` the current epoch
  closes, and once all of a closed epoch's trees have settled the epoch
  commits and its dedup state is garbage-collected.
* **atomic** — a Spindle-style sender-ordered, all-or-none multicast
  over the same tree machinery.  Destinations *buffer* the tuple on
  arrival and ack receipt; when every live destination has received a
  tree, the coordinator *commits* it — in per-sender sequence order,
  with commit notices opportunistically batched per machine — and only
  then do destinations execute.  A tree that exhausts its replay budget
  is *aborted*: no destination ever executes it (all-or-none).  Crashed
  machines are excised from the delivery set at registration/crash time
  (fail-stop membership, as Spindle's membership service would).

Dedup state lives with the coordinator (conceptually: checkpointed
control-plane state at the trackers), so it survives machine crashes the
way a checkpoint would; the in-flight *claims* that guard concurrent
duplicate execution are volatile and are purged on crash, which is what
lets a crash-interrupted execution be replayed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.dsps.acker import Acker

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsps.comm import Envelope
    from repro.dsps.executor import ExecutorBase
    from repro.dsps.system import DspsSystem


@dataclass(frozen=True)
class AckMessage:
    """Control-plane payload: destination ``task_id`` acknowledged the
    tuple rooted at ``root_id`` (execution ack in at-least/exactly-once
    modes, receipt ack in atomic mode)."""

    root_id: int
    task_id: int


@dataclass(frozen=True)
class CommitMessage:
    """Atomic mode: the listed roots are stable everywhere — release
    their buffered copies for execution (batched per machine)."""

    roots: Tuple[int, ...]


@dataclass(frozen=True)
class AbortMessage:
    """Atomic mode: the listed roots exhausted their replay budget —
    purge any buffered copy, they will never execute."""

    roots: Tuple[int, ...]


@dataclass(frozen=True)
class CompletionRecord:
    """One fully-delivered tuple tree."""

    root_id: int
    completed_at: float
    registered_at: float
    attempts: int  # replay attempts before completion (0 = first try)


@dataclass
class _PendingTree:
    executor: "ExecutorBase"
    envelope: "Envelope"
    registered_at: float
    attempts: int = 0
    acked_tasks: set = field(default_factory=set)
    #: registration epoch (dedup GC barrier).
    epoch: int = 0
    #: atomic mode: sender task id and per-sender sequence number.
    sender: int = -1
    seq: int = -1


@dataclass
class _AtomicAudit:
    """Per-root evidence for the group-atomicity invariant."""

    root_id: int
    sender: int
    seq: int
    dst_tasks: frozenset
    status: str = "pending"  # pending | committed | aborted
    #: tasks excused from delivery (machine crashed: fail-stop membership).
    excused: Set[int] = field(default_factory=set)
    executed: Set[int] = field(default_factory=set)
    commit_t: Optional[float] = None

    def violation(self) -> Optional[str]:
        if self.status == "aborted" and self.executed:
            return (
                f"aborted root {self.root_id} executed at tasks "
                f"{sorted(self.executed)}"
            )
        if self.status == "committed":
            missing = self.dst_tasks - self.executed - self.excused
            if missing:
                return (
                    f"committed root {self.root_id} never executed at "
                    f"tasks {sorted(missing)}"
                )
        return None


class ReplayCoordinator:
    """Per-system delivery-semantics engine (one acker task, Storm-style)."""

    def __init__(self, system: "DspsSystem"):
        self.system = system
        self.sim = system.sim
        cfg = system.config
        self.config = cfg
        self.mode = cfg.delivery_mode
        # The acker task lives with a broadcasting spout (Storm places
        # ackers as ordinary tasks; co-locating with the source keeps
        # the register path local while acks travel the real network).
        # Prefer a spout that actually has a one-to-many edge — side
        # streams never register trees.
        broadcasting = [
            sp
            for sp in system.spout_executors
            if any(g.one_to_many for g, _ in sp._groupings.values())
        ]
        if broadcasting:
            self.home_machine = broadcasting[0].machine_id
        elif system.spout_executors:
            self.home_machine = system.spout_executors[0].machine_id
        else:
            self.home_machine = min(system.workers)
        # One seeded stream feeds both the acker's edge ids and the
        # replay-backoff jitter, so a run is deterministic per seed.
        self._rng = system.rng.stream("acker")
        self.acker = Acker(
            now_fn=lambda: self.sim.now,
            timeout_s=cfg.ack_timeout_s,
            seed=int(self._rng.integers(0, 2**31)),
        )
        self._tree_ids = itertools.count(1)
        #: acker tree id -> pending bookkeeping.
        self._pending: Dict[int, _PendingTree] = {}
        #: root tuple id -> tree id, while the tree is pending.
        self._root_tree: Dict[int, int] = {}
        #: (root tuple id, destination task) -> (tree id, edge id).
        self._edges: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.registered = 0
        self.replays = 0
        self.completions: List[CompletionRecord] = []
        self.gave_up: List[int] = []

        # --- dedup / idempotent-execution state (reliable modes) ---------
        #: root -> tasks that *completed* an execution (durable: survives
        #: crashes like checkpointed state; GC'd by epoch commit).
        self._executed: Dict[int, Set[int]] = {}
        #: root -> tasks with an execution *in flight* (volatile: purged
        #: when the task's machine crashes).
        self._claimed: Dict[int, Set[int]] = {}
        #: executions of a (root, task) pair beyond the first — the
        #: no-duplicate-side-effects invariant requires 0 in
        #: exactly_once/atomic; at_least_once merely counts them.
        self.duplicate_executions = 0
        #: duplicate deliveries suppressed before execution.
        self.duplicates_suppressed = 0

        # --- epoch barriers ----------------------------------------------
        self._epoch = 0
        #: epoch -> roots registered in it (kept until the epoch commits).
        self._epoch_roots: Dict[int, List[int]] = {0: []}
        #: epoch -> trees not yet settled (completed/committed/aborted).
        self._epoch_open: Dict[int, int] = {0: 0}
        self._oldest_uncommitted = 0
        self.epochs_committed = 0

        # --- atomic multicast ----------------------------------------------
        #: sender task -> next sequence number to assign.
        self._seq_next: Dict[int, int] = {}
        #: sender task -> next sequence number to commit.
        self._commit_next: Dict[int, int] = {}
        #: sender task -> {seq: tree id} awaiting commit-order release.
        self._sender_queue: Dict[int, Dict[int, int]] = {}
        #: tree id -> "stable" | "aborted" (absent = still pending).
        self._tree_status: Dict[int, str] = {}
        #: root -> {task: buffered tuple} held back until commit.
        self._held: Dict[int, Dict[int, object]] = {}
        #: root -> tasks whose released copy is still riding the inqueue
        #: (audit judgment defers while any release is in flight).
        self._in_release: Dict[int, Set[int]] = {}
        self._committed_roots: Set[int] = set()
        self._aborted_roots: Set[int] = set()
        #: root -> last commit/abort notice instant (for sweep retries).
        self._notice_sent_at: Dict[int, float] = {}
        #: opportunistic cross-sender notice batching: roots settling at
        #: the same instant — even via different senders' commit pumps —
        #: share one notice per machine.  Settable to ``False`` for
        #: differential tests of the unbatched path.
        self._notice_batching = True
        self._commit_notice_buffer: List[int] = []
        self._abort_notice_buffer: List[int] = []
        self._notice_flush_scheduled = False
        #: Commit/Abort control messages actually sent (batching metric).
        self.notice_messages = 0
        self.commits = 0
        self.aborts = 0
        #: commit buffer entries dropped on inqueue overflow (excused).
        self.commit_drops = 0
        #: sender -> committed seqs, in commit order (order invariant).
        self.commit_order: Dict[int, List[int]] = {}
        #: group-atomicity breaches found when audits are GC'd.
        self.atomic_violations: List[str] = []
        #: root -> audit record (atomic mode only; GC'd by epoch commit).
        self._audit: Dict[int, _AtomicAudit] = {}

        system.workers[self.home_machine].add_control_handler(self._on_control)
        if self.mode == "atomic":
            for machine, worker in system.workers.items():
                worker.add_control_handler(
                    lambda payload, m=machine: self._on_notice(m, payload)
                )
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._sweep_loop())
        self.sim.process(self._epoch_loop())

    # ------------------------------------------------------------------
    # spout side
    # ------------------------------------------------------------------
    def register(self, executor: "ExecutorBase", env: "Envelope") -> None:
        """Track one accepted one-to-many spout envelope."""
        tree_id = next(self._tree_ids)
        root = env.tuple.tuple_id
        record = _PendingTree(
            executor=executor,
            envelope=env,
            registered_at=self.sim.now,
            epoch=self._epoch,
        )
        self._pending[tree_id] = record
        self._root_tree[root] = tree_id
        self._epoch_roots[self._epoch].append(root)
        self._epoch_open[self._epoch] += 1
        self.registered += 1
        self.system.metrics.note_acker_pending(len(self._pending))
        tasks = list(env.dst_tasks)
        if self.mode == "atomic":
            sender = executor.task_id
            seq = self._seq_next.get(sender, 0)
            self._seq_next[sender] = seq + 1
            record.sender = sender
            record.seq = seq
            self._sender_queue.setdefault(sender, {})[seq] = tree_id
            self._commit_next.setdefault(sender, 0)
            # Fail-stop membership: destinations on crashed machines are
            # excused up front — all-or-none is over *live* destinations.
            machine_of = self.system.placement.machine_of
            live = [
                t for t in tasks
                if not self.system.machine_is_crashed(machine_of[t])
            ]
            audit = _AtomicAudit(
                root_id=root,
                sender=sender,
                seq=seq,
                dst_tasks=frozenset(tasks),
                excused=set(tasks) - set(live),
            )
            self._audit[root] = audit
            tasks = live
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "ack.register",
                self.sim.now,
                tree=tree_id,
                root=root,
                operator=env.dst_operator,
                n_dsts=len(env.dst_tasks),
                epoch=record.epoch,
            )
        self._register_edges(tree_id, record, tasks)

    def _register_edges(
        self,
        tree_id: int,
        record: _PendingTree,
        tasks: Optional[List[int]] = None,
    ) -> None:
        """(Re-)register the tree: edge 0 spout->acker, one edge per
        destination task, all alive until each destination acks.
        ``tasks`` restricts the edge set (selective replay, fail-stop
        exclusions); default is every destination."""
        root = record.envelope.tuple.tuple_id
        if tasks is None:
            tasks = list(record.envelope.dst_tasks)
        edge0 = self.acker.new_edge_id()
        self.acker.register(tree_id, edge0)
        task_edges = {task: self.acker.new_edge_id() for task in tasks}
        for task, edge in task_edges.items():
            self._edges[(root, task)] = (tree_id, edge)
        outcome = self.acker.ack(tree_id, edge0, list(task_edges.values()))
        if outcome is not None and outcome.completed:
            # Zero live destinations (every machine crashed): the tree is
            # trivially complete the instant it is registered.
            self._on_tree_complete(tree_id)

    # ------------------------------------------------------------------
    # bolt side: the delivery gate + execution notification
    # ------------------------------------------------------------------
    def on_delivery(self, task_id: int, tup) -> str:
        """Gate one tuple about to be executed at ``task_id``.

        Returns ``"execute"`` to proceed; anything else means the copy
        was absorbed here (``"duplicate"`` suppressed by dedup, ``"hold"``
        buffered until its group commits, ``"aborted"`` purged)."""
        if self.mode == "at_least_once":
            return "execute"  # Storm semantics: duplicates re-execute
        root = tup.root_id
        executed = self._executed.get(root)
        if executed is not None and task_id in executed:
            # Idempotent-execution contract: already executed here — ack
            # again (the replay minted a fresh edge) but do not re-run.
            self.duplicates_suppressed += 1
            self._ack_if_tracked(task_id, root)
            self._trace_dedup(root, task_id)
            return "duplicate"
        claimed = self._claimed.get(root)
        if claimed is not None and task_id in claimed:
            # Another copy is mid-service at this task; it will ack when
            # it completes (or the claim is purged if the machine dies).
            self.duplicates_suppressed += 1
            self._trace_dedup(root, task_id)
            return "duplicate"
        if self.mode == "atomic":
            return self._on_delivery_atomic(task_id, tup, root)
        # exactly_once: claim at the decision point so two in-flight
        # copies can never both reach the bolt.
        if root in self._root_tree or executed is not None:
            self._claimed.setdefault(root, set()).add(task_id)
        return "execute"

    def _on_delivery_atomic(self, task_id: int, tup, root: int) -> str:
        if root in self._aborted_roots:
            return "aborted"
        if root in self._committed_roots:
            # Released (or late) copy of a committed tree: execute once.
            self._claimed.setdefault(root, set()).add(task_id)
            return "execute"
        tree_id = self._root_tree.get(root)
        if tree_id is None:
            return "execute"  # untracked stream (no one-to-many tree)
        # Pending tree: buffer the first copy, ack receipt; duplicates
        # from a whole-tree replay re-ack against the fresh edge.
        held = self._held.setdefault(root, {})
        if task_id not in held:
            held[task_id] = tup
        self._ack_if_tracked(task_id, root)
        return "hold"

    def notify_executed(self, task_id: int, tup) -> None:
        """Called by every bolt execution; no-op for untracked tuples."""
        root = tup.root_id
        tracked = (
            root in self._root_tree
            or root in self._executed
            or root in self._committed_roots
        )
        if tracked and self.mode != "at_most_once":
            executed = self._executed.setdefault(root, set())
            if task_id in executed:
                self.duplicate_executions += 1
            executed.add(task_id)
            claimed = self._claimed.get(root)
            if claimed is not None:
                claimed.discard(task_id)
            audit = self._audit.get(root)
            if audit is not None:
                audit.executed.add(task_id)
        if self.mode == "atomic":
            pending = self._in_release.get(root)
            if pending is not None:
                pending.discard(task_id)
                if not pending:
                    del self._in_release[root]
            return  # receipt was acked at delivery; commit is the ack
        self._ack_if_tracked(task_id, root)

    def _ack_if_tracked(self, task_id: int, root: int) -> None:
        entry = self._edges.get((root, task_id))
        if entry is None:
            return
        machine = self.system.placement.machine_of[task_id]
        if self.system.machine_is_crashed(machine):
            return  # execution raced the crash; the ack dies with it
        self.sim.process(self._send_ack(machine, (root, task_id)))

    def _send_ack(self, machine: int, key: Tuple[int, int]):
        root, task = key
        worker = self.system.workers[machine]
        yield from self.system.control_send(
            machine, self.home_machine, AckMessage(root, task), worker.cpu
        )

    def _trace_dedup(self, root: int, task_id: int) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("ack.dedup", self.sim.now, root=root, task=task_id)

    # ------------------------------------------------------------------
    # acker machine: control-plane delivery
    # ------------------------------------------------------------------
    def _on_control(self, payload) -> None:
        if not isinstance(payload, AckMessage):
            return
        entry = self._edges.pop((payload.root_id, payload.task_id), None)
        if entry is None:
            return  # duplicate/stale ack
        tree_id, edge = entry
        record = self._pending.get(tree_id)
        if record is not None:
            record.acked_tasks.add(payload.task_id)
        outcome = self.acker.ack(tree_id, edge)
        if outcome is not None and outcome.completed:
            self._on_tree_complete(tree_id)

    def _on_tree_complete(self, tree_id: int) -> None:
        """Every (live) destination acked: complete now, or — in atomic
        mode — mark stable and commit in sender order."""
        if self.mode != "atomic":
            self._on_complete(tree_id)
            return
        record = self._pending.get(tree_id)
        if record is None:  # pragma: no cover - defensive
            return
        self._tree_status[tree_id] = "stable"
        self._pump_commits(record.sender)

    def _on_complete(self, tree_id: int) -> None:
        record = self._pending.pop(tree_id, None)
        if record is None:  # pragma: no cover - defensive
            return
        root = record.envelope.tuple.tuple_id
        self._root_tree.pop(root, None)
        self.completions.append(
            CompletionRecord(
                root_id=root,
                completed_at=self.sim.now,
                registered_at=record.registered_at,
                attempts=record.attempts,
            )
        )
        self._settle_epoch(record.epoch)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "ack.complete",
                self.sim.now,
                root=root,
                attempts=record.attempts,
                latency_s=self.sim.now - record.registered_at,
            )

    # ------------------------------------------------------------------
    # atomic mode: sender-ordered commit / abort
    # ------------------------------------------------------------------
    def _pump_commits(self, sender: int) -> None:
        """Commit stable trees of ``sender`` in sequence order; notices
        for trees committing at the same instant batch per machine."""
        queue = self._sender_queue.get(sender)
        if queue is None:
            return
        nxt = self._commit_next.get(sender, 0)
        committed_roots: List[int] = []
        while nxt in queue:
            tree_id = queue[nxt]
            status = self._tree_status.get(tree_id)
            if status == "aborted":
                del queue[nxt]
                self._tree_status.pop(tree_id, None)
                nxt += 1
                continue
            if status != "stable":
                break  # head of line still in flight: hold back commits
            del queue[nxt]
            self._tree_status.pop(tree_id, None)
            committed_roots.append(self._commit_tree(tree_id, nxt))
            nxt += 1
        self._commit_next[sender] = nxt
        if committed_roots:
            self._queue_notice(committed_roots, commit=True)

    def _commit_tree(self, tree_id: int, seq: int) -> int:
        record = self._pending.pop(tree_id)
        root = record.envelope.tuple.tuple_id
        self._root_tree.pop(root, None)
        self._committed_roots.add(root)
        self.commits += 1
        self.commit_order.setdefault(record.sender, []).append(seq)
        audit = self._audit.get(root)
        if audit is not None:
            audit.status = "committed"
            audit.commit_t = self.sim.now
        self.completions.append(
            CompletionRecord(
                root_id=root,
                completed_at=self.sim.now,
                registered_at=record.registered_at,
                attempts=record.attempts,
            )
        )
        self._settle_epoch(record.epoch)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "atomic.commit",
                self.sim.now,
                root=root,
                sender=record.sender,
                seq=seq,
                attempts=record.attempts,
                latency_s=self.sim.now - record.registered_at,
            )
        return root

    def _abort_tree(self, tree_id: int, record: _PendingTree) -> None:
        root = record.envelope.tuple.tuple_id
        self._pending.pop(tree_id, None)
        self._root_tree.pop(root, None)
        self._aborted_roots.add(root)
        self._tree_status[tree_id] = "aborted"
        self.aborts += 1
        self.gave_up.append(root)
        self.system.metrics.on_abandoned()
        audit = self._audit.get(root)
        if audit is not None:
            audit.status = "aborted"
        self._settle_epoch(record.epoch)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "atomic.abort",
                self.sim.now,
                root=root,
                sender=record.sender,
                seq=record.seq,
                attempts=record.attempts - 1,
            )
        if self._held.get(root):
            self._queue_notice([root], commit=False)
        self._pump_commits(record.sender)

    def _queue_notice(self, roots: List[int], commit: bool) -> None:
        """Buffer notices and flush them in one same-instant callback, so
        roots settling at the same instant via *different senders'*
        commit pumps still share one notice per machine.  With batching
        disabled, notices go out immediately (one batch per pump)."""
        if not self._notice_batching:
            self._broadcast_notice(roots, commit)
            return
        buffer = (
            self._commit_notice_buffer if commit else self._abort_notice_buffer
        )
        buffer.extend(roots)
        if not self._notice_flush_scheduled:
            self._notice_flush_scheduled = True
            self.sim.schedule_call(0.0, self._flush_notices)

    def _flush_notices(self) -> None:
        self._notice_flush_scheduled = False
        commits, self._commit_notice_buffer = self._commit_notice_buffer, []
        aborts, self._abort_notice_buffer = self._abort_notice_buffer, []
        if commits:
            self._broadcast_notice(commits, commit=True)
        if aborts:
            self._broadcast_notice(aborts, commit=False)

    def _broadcast_notice(self, roots: List[int], commit: bool) -> None:
        """Send one Commit/AbortMessage per destination machine holding a
        buffered copy (opportunistic batching: one notice covers every
        root that settled at this instant)."""
        machine_of = self.system.placement.machine_of
        by_machine: Dict[int, List[int]] = {}
        for root in roots:
            self._notice_sent_at[root] = self.sim.now
            for task in self._held.get(root, ()):
                by_machine.setdefault(machine_of[task], []).append(root)
        payload_cls = CommitMessage if commit else AbortMessage
        for machine, machine_roots in sorted(by_machine.items()):
            if self.system.machine_is_crashed(machine):
                continue  # its buffers died with it (purged on crash)
            payload = payload_cls(roots=tuple(sorted(set(machine_roots))))
            self.notice_messages += 1
            self.sim.process(self._send_notice(machine, payload))

    def _send_notice(self, machine: int, payload):
        worker = self.system.workers[self.home_machine]
        yield from self.system.control_send(
            self.home_machine, machine, payload, worker.cpu
        )

    def _on_notice(self, machine: int, payload) -> None:
        """Commit/abort notice arriving at a destination machine."""
        if isinstance(payload, CommitMessage):
            self._release_held(machine, payload.roots)
        elif isinstance(payload, AbortMessage):
            self._purge_held(machine, payload.roots)

    def _release_held(self, machine: int, roots: Tuple[int, ...]) -> None:
        machine_of = self.system.placement.machine_of
        for root in roots:
            held = self._held.get(root)
            if not held:
                continue
            local = [t for t in held if machine_of[t] == machine]
            for task in local:
                tup = held.pop(task)
                executor = self.system.executors[task]
                from repro.dsps.tuples import AddressedTuple

                if executor.accept(AddressedTuple(task, tup)):
                    self._in_release.setdefault(root, set()).add(task)
                else:
                    # Inqueue overflow: the committed copy is lost at
                    # this destination — excuse it so group-atomicity
                    # accounting stays honest.
                    self.commit_drops += 1
                    audit = self._audit.get(root)
                    if audit is not None:
                        audit.excused.add(task)
            if not held:
                self._held.pop(root, None)

    def _purge_held(self, machine: int, roots: Tuple[int, ...]) -> None:
        machine_of = self.system.placement.machine_of
        for root in roots:
            held = self._held.get(root)
            if not held:
                continue
            for task in [t for t in held if machine_of[t] == machine]:
                held.pop(task)
            if not held:
                self._held.pop(root, None)

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def on_machine_crash(self, machine: int) -> None:
        """A machine fail-stopped: purge its volatile delivery state.

        * in-flight execution claims die (so a replay may re-execute);
        * buffered atomic copies die — if the tree already counted this
          destination's receipt ack, the task is excused (it can never
          execute the committed tree: the post-commit crash window);
        * live atomic trees forgive the crashed destinations' edges so
          the group can still commit over the live membership.
        """
        machine_of = self.system.placement.machine_of
        for root, claimed in list(self._claimed.items()):
            executed = self._executed.get(root, set())
            stale = {
                t for t in claimed
                if machine_of[t] == machine and t not in executed
            }
            claimed -= stale
            if not claimed:
                self._claimed.pop(root, None)
        if self.mode != "atomic":
            return
        for root, held in list(self._held.items()):
            lost = [t for t in held if machine_of[t] == machine]
            for task in lost:
                held.pop(task)
                audit = self._audit.get(root)
                if audit is not None:
                    audit.excused.add(task)
            if not held:
                self._held.pop(root, None)
        # Released copies queued on the crashed machine die with its
        # inqueues: the post-commit crash window (excused).
        for root, pending in list(self._in_release.items()):
            lost = {t for t in pending if machine_of[t] == machine}
            for task in lost:
                audit = self._audit.get(root)
                if audit is not None:
                    audit.excused.add(task)
            pending -= lost
            if not pending:
                self._in_release.pop(root, None)
        # Forgive pending edges of tasks on the crashed machine: ack on
        # their behalf so all-or-none ranges over live destinations only.
        for (root, task), (tree_id, edge) in list(self._edges.items()):
            if machine_of[task] != machine:
                continue
            if tree_id not in self._pending:
                continue
            del self._edges[(root, task)]
            audit = self._audit.get(root)
            if audit is not None:
                audit.excused.add(task)
            record = self._pending.get(tree_id)
            if record is not None:
                record.acked_tasks.add(task)
            outcome = self.acker.ack(tree_id, edge)
            if outcome is not None and outcome.completed:
                self._on_tree_complete(tree_id)

    # ------------------------------------------------------------------
    # timeout sweep + replay
    # ------------------------------------------------------------------
    def _sweep_loop(self):
        cfg = self.config
        while True:
            yield self.sim.timeout(cfg.ack_sweep_interval_s)
            for outcome in self.acker.sweep():
                self._on_timeout(outcome.root_id)
            if self.mode == "atomic":
                self._retry_notices()

    def _retry_notices(self) -> None:
        """Re-send commit/abort notices for roots that still hold
        buffered copies (the notice died on a down link or machine)."""
        stale = [
            root
            for root, sent_at in self._notice_sent_at.items()
            if self._held.get(root)
            and self.sim.now - sent_at >= self.config.ack_timeout_s
        ]
        for root in stale:
            self._broadcast_notice([root], commit=root in self._committed_roots)
        for root in [
            r for r in self._notice_sent_at if not self._held.get(r)
        ]:
            self._notice_sent_at.pop(root, None)

    def _on_timeout(self, tree_id: int) -> None:
        record = self._pending.get(tree_id)
        if record is None:  # pragma: no cover - defensive
            return
        root = record.envelope.tuple.tuple_id
        # Retire the stale edges; fresh ones are minted on replay.
        for task in record.envelope.dst_tasks:
            entry = self._edges.get((root, task))
            if entry is not None and entry[0] == tree_id:
                del self._edges[(root, task)]
        record.attempts += 1
        tracer = self.sim.tracer
        if record.attempts > self.config.max_replays:
            if self.mode == "atomic":
                if tracer is not None:
                    tracer.emit(
                        "fault.replay_give_up",
                        self.sim.now,
                        root=root,
                        attempts=record.attempts - 1,
                    )
                self._abort_tree(tree_id, record)
                return
            self._pending.pop(tree_id, None)
            self._root_tree.pop(root, None)
            self.gave_up.append(root)
            self.system.metrics.on_abandoned()
            self._settle_epoch(record.epoch)
            if tracer is not None:
                tracer.emit(
                    "fault.replay_give_up",
                    self.sim.now,
                    root=root,
                    attempts=record.attempts - 1,
                )
            return
        backoff = self.config.replay_backoff_base_s * (
            2 ** (record.attempts - 1)
        )
        if backoff > 0:
            # Deterministic jitter (seeded "acker" stream): trees failed
            # by the same sweep spread over [backoff, 2*backoff) instead
            # of replaying in lockstep.
            backoff *= 1.0 + float(self._rng.uniform(0.0, 1.0))
        flow = self.system.flow
        if flow is not None:
            # Replay-storm control: claim a token from the global budget
            # and widen the backoff under measured congestion.
            token_delay, congestion = flow.replay_gate()
            if congestion > 0:
                backoff *= (
                    self.config.congestion_backoff_factor
                    ** min(congestion, 4)
                )
            backoff += token_delay
        self.replays += 1
        if tracer is not None:
            tracer.emit(
                "fault.replay",
                self.sim.now,
                root=root,
                attempt=record.attempts,
                backoff_s=backoff,
            )
        self.sim.process(self._replay(tree_id, record, backoff))

    def _replay_tasks(self, record: _PendingTree) -> List[int]:
        """The destinations a replay must reach."""
        tasks = list(record.envelope.dst_tasks)
        if self.mode == "exactly_once":
            # Selective replay: only destinations whose ack is missing.
            tasks = [t for t in tasks if t not in record.acked_tasks]
        elif self.mode == "atomic":
            machine_of = self.system.placement.machine_of
            audit = self._audit.get(record.envelope.tuple.tuple_id)
            excused = audit.excused if audit is not None else set()
            tasks = [
                t for t in tasks
                if t not in excused
                and not self.system.machine_is_crashed(machine_of[t])
            ]
        return tasks

    def _replay(self, tree_id: int, record: _PendingTree, backoff: float):
        if backoff > 0:
            yield self.sim.timeout(backoff)
        if tree_id not in self._pending:  # pragma: no cover - defensive
            return
        tasks = self._replay_tasks(record)
        self._register_edges(tree_id, record, tasks)
        if tree_id not in self._pending:
            return  # zero live destinations: completed at registration
        env = record.envelope
        if self.mode == "exactly_once" and set(tasks) != set(env.dst_tasks):
            # Point repair: re-deliver only the unacked destinations,
            # bypassing the multicast tree (Envelope.selective).
            from repro.dsps.comm import Envelope

            env = Envelope(
                tuple=env.tuple,
                dst_operator=env.dst_operator,
                dst_tasks=tasks,
                one_to_many=True,
                selective=True,
            )
        # Re-enqueue at the spout; a blocking put applies backpressure
        # instead of silently dropping the replay when the queue is full.
        yield record.executor.transfer_queue.put(env)

    # ------------------------------------------------------------------
    # epoch barriers: close every interval, commit once settled, GC dedup
    # ------------------------------------------------------------------
    def _epoch_loop(self):
        interval = self.config.epoch_interval_s
        while True:
            yield self.sim.timeout(interval)
            self._epoch += 1
            self._epoch_roots.setdefault(self._epoch, [])
            self._epoch_open.setdefault(self._epoch, 0)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("epoch.open", self.sim.now, epoch=self._epoch)
            self._try_commit_epochs()

    def _settle_epoch(self, epoch: int) -> None:
        self._epoch_open[epoch] -= 1
        flow = self.system.flow
        if flow is not None:
            # Every settle path funnels through here: the admission gate
            # re-checks the pending count the moment it can shrink.
            flow.on_pending_change()
        self._try_commit_epochs()

    def _try_commit_epochs(self) -> None:
        # One closed epoch of lag guards against in-flight stragglers
        # whose dedup entry would otherwise be GC'd under them.
        while (
            self._oldest_uncommitted < self._epoch - 1
            and self._epoch_open.get(self._oldest_uncommitted, 0) == 0
        ):
            epoch = self._oldest_uncommitted
            roots = self._epoch_roots.pop(epoch, [])
            self._epoch_open.pop(epoch, None)
            deferred: List[int] = []
            for root in roots:
                audit = self._audit.get(root)
                if audit is not None:
                    problem = audit.violation()
                    if problem is not None and self._release_pending(root):
                        # Committed copies still buffered or riding an
                        # inqueue: judgment (and GC) wait for them.
                        deferred.append(root)
                        continue
                    self._audit.pop(root, None)
                    if problem is not None:
                        self.atomic_violations.append(problem)
                self._executed.pop(root, None)
                self._claimed.pop(root, None)
                self._committed_roots.discard(root)
                self._aborted_roots.discard(root)
                self._notice_sent_at.pop(root, None)
            if deferred:
                self._epoch_roots[self._epoch].extend(deferred)
            self.epochs_committed += 1
            self._oldest_uncommitted += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "epoch.commit",
                    self.sim.now,
                    epoch=epoch,
                    n_roots=len(roots),
                )

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def _release_pending(self, root: int) -> bool:
        """True while committed copies of ``root`` are still buffered at
        a destination or riding an inqueue toward execution."""
        return bool(self._held.get(root)) or bool(self._in_release.get(root))

    @property
    def held_entries(self) -> int:
        """Atomic mode: buffered or released-but-unexecuted copies
        (drain loops should wait for these too)."""
        return sum(len(h) for h in self._held.values()) + sum(
            len(s) for s in self._in_release.values()
        )

    @property
    def dedup_entries(self) -> int:
        """Live (root, task) dedup entries (bounded by epoch GC)."""
        return sum(len(tasks) for tasks in self._executed.values())

    def replayed_completions(self) -> List[CompletionRecord]:
        return [c for c in self.completions if c.attempts > 0]

    def audit_violations(self) -> List[str]:
        """Group-atomicity breaches: accumulated at epoch GC plus a
        sweep of the audits still retained."""
        found = list(self.atomic_violations)
        for root, audit in self._audit.items():
            if audit.status == "pending":
                continue  # still in flight; judged when it settles
            if self._release_pending(root):
                continue  # committed copies still en route to execution
            problem = audit.violation()
            if problem is not None:
                found.append(problem)
        for sender, seqs in self.commit_order.items():
            if seqs != sorted(seqs):
                found.append(
                    f"sender {sender} committed out of order: {seqs}"
                )
        return found
