"""At-least-once delivery: acker-driven replay of one-to-many tuples.

The :class:`ReplayCoordinator` wires Storm's XOR :class:`~repro.dsps.
acker.Acker` into the spout's emission path:

* when a spout emits a one-to-many tuple, the coordinator registers a
  tuple tree with one edge per destination task;
* each destination task's execution sends an :class:`AckMessage` over the
  control plane to the acker's machine (real traffic, so ack overhead
  shows up in the fabric counters);
* a periodic sweep fails trees older than ``ack_timeout_s`` and replays
  them from the spout with exponential backoff, up to ``max_replays``
  attempts.

Replays re-deliver to *every* destination (Storm semantics); the
set-based metrics trackers (:class:`~repro.dsps.metrics.MulticastTracker`
/ :class:`~repro.dsps.metrics.CompletionTracker`) count each destination
once, so duplicates never inflate throughput or shorten latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.dsps.acker import Acker

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsps.comm import Envelope
    from repro.dsps.executor import ExecutorBase
    from repro.dsps.system import DspsSystem


@dataclass(frozen=True)
class AckMessage:
    """Control-plane payload: destination ``task_id`` executed the tuple
    rooted at ``root_id``."""

    root_id: int
    task_id: int


@dataclass(frozen=True)
class CompletionRecord:
    """One fully-delivered tuple tree."""

    root_id: int
    completed_at: float
    registered_at: float
    attempts: int  # replay attempts before completion (0 = first try)


@dataclass
class _PendingTree:
    executor: "ExecutorBase"
    envelope: "Envelope"
    registered_at: float
    attempts: int = 0
    acked_tasks: set = field(default_factory=set)


class ReplayCoordinator:
    """Per-system replay engine (one acker task, Storm-style)."""

    def __init__(self, system: "DspsSystem"):
        self.system = system
        self.sim = system.sim
        cfg = system.config
        self.config = cfg
        # The acker task lives with a broadcasting spout (Storm places
        # ackers as ordinary tasks; co-locating with the source keeps
        # the register path local while acks travel the real network).
        # Prefer a spout that actually has a one-to-many edge — side
        # streams never register trees.
        broadcasting = [
            sp
            for sp in system.spout_executors
            if any(g.one_to_many for g, _ in sp._groupings.values())
        ]
        if broadcasting:
            self.home_machine = broadcasting[0].machine_id
        elif system.spout_executors:
            self.home_machine = system.spout_executors[0].machine_id
        else:
            self.home_machine = min(system.workers)
        seed_stream = system.rng.stream("acker")
        self.acker = Acker(
            now_fn=lambda: self.sim.now,
            timeout_s=cfg.ack_timeout_s,
            seed=int(seed_stream.integers(0, 2**31)),
        )
        self._tree_ids = itertools.count(1)
        #: acker tree id -> pending bookkeeping.
        self._pending: Dict[int, _PendingTree] = {}
        #: (root tuple id, destination task) -> (tree id, edge id).
        self._edges: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.registered = 0
        self.replays = 0
        self.completions: List[CompletionRecord] = []
        self.gave_up: List[int] = []
        system.workers[self.home_machine].add_control_handler(self._on_control)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._sweep_loop())

    # ------------------------------------------------------------------
    # spout side
    # ------------------------------------------------------------------
    def register(self, executor: "ExecutorBase", env: "Envelope") -> None:
        """Track one accepted one-to-many spout envelope."""
        tree_id = next(self._tree_ids)
        record = _PendingTree(
            executor=executor, envelope=env, registered_at=self.sim.now
        )
        self._pending[tree_id] = record
        self._register_edges(tree_id, record)
        self.registered += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "ack.register",
                self.sim.now,
                tree=tree_id,
                root=env.tuple.tuple_id,
                operator=env.dst_operator,
                n_dsts=len(env.dst_tasks),
            )

    def _register_edges(self, tree_id: int, record: _PendingTree) -> None:
        """(Re-)register the tree: edge 0 spout->acker, one edge per
        destination task, all alive until each destination acks."""
        root = record.envelope.tuple.tuple_id
        edge0 = self.acker.new_edge_id()
        self.acker.register(tree_id, edge0)
        task_edges = {
            task: self.acker.new_edge_id()
            for task in record.envelope.dst_tasks
        }
        self.acker.ack(tree_id, edge0, list(task_edges.values()))
        for task, edge in task_edges.items():
            self._edges[(root, task)] = (tree_id, edge)

    # ------------------------------------------------------------------
    # bolt side
    # ------------------------------------------------------------------
    def notify_executed(self, task_id: int, tup) -> None:
        """Called by every bolt execution; no-op for untracked tuples."""
        key = (tup.root_id, task_id)
        entry = self._edges.get(key)
        if entry is None:
            return
        machine = self.system.placement.machine_of[task_id]
        if self.system.machine_is_crashed(machine):
            return  # execution raced the crash; the ack dies with it
        self.sim.process(self._send_ack(machine, key))

    def _send_ack(self, machine: int, key: Tuple[int, int]):
        root, task = key
        worker = self.system.workers[machine]
        yield from self.system.control_send(
            machine, self.home_machine, AckMessage(root, task), worker.cpu
        )

    # ------------------------------------------------------------------
    # acker machine: control-plane delivery
    # ------------------------------------------------------------------
    def _on_control(self, payload) -> None:
        if not isinstance(payload, AckMessage):
            return
        entry = self._edges.pop((payload.root_id, payload.task_id), None)
        if entry is None:
            return  # duplicate/stale ack
        tree_id, edge = entry
        record = self._pending.get(tree_id)
        if record is not None:
            record.acked_tasks.add(payload.task_id)
        outcome = self.acker.ack(tree_id, edge)
        if outcome is not None and outcome.completed:
            self._on_complete(tree_id)

    def _on_complete(self, tree_id: int) -> None:
        record = self._pending.pop(tree_id, None)
        if record is None:  # pragma: no cover - defensive
            return
        root = record.envelope.tuple.tuple_id
        self.completions.append(
            CompletionRecord(
                root_id=root,
                completed_at=self.sim.now,
                registered_at=record.registered_at,
                attempts=record.attempts,
            )
        )
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "ack.complete",
                self.sim.now,
                root=root,
                attempts=record.attempts,
                latency_s=self.sim.now - record.registered_at,
            )

    # ------------------------------------------------------------------
    # timeout sweep + replay
    # ------------------------------------------------------------------
    def _sweep_loop(self):
        cfg = self.config
        while True:
            yield self.sim.timeout(cfg.ack_sweep_interval_s)
            for outcome in self.acker.sweep():
                self._on_timeout(outcome.root_id)

    def _on_timeout(self, tree_id: int) -> None:
        record = self._pending.get(tree_id)
        if record is None:  # pragma: no cover - defensive
            return
        root = record.envelope.tuple.tuple_id
        # Retire the stale edges; fresh ones are minted on replay.
        for task in record.envelope.dst_tasks:
            entry = self._edges.get((root, task))
            if entry is not None and entry[0] == tree_id:
                del self._edges[(root, task)]
        record.attempts += 1
        tracer = self.sim.tracer
        if record.attempts > self.config.max_replays:
            self._pending.pop(tree_id, None)
            self.gave_up.append(root)
            if tracer is not None:
                tracer.emit(
                    "fault.replay_give_up",
                    self.sim.now,
                    root=root,
                    attempts=record.attempts - 1,
                )
            return
        backoff = self.config.replay_backoff_base_s * (
            2 ** (record.attempts - 1)
        )
        self.replays += 1
        if tracer is not None:
            tracer.emit(
                "fault.replay",
                self.sim.now,
                root=root,
                attempt=record.attempts,
                backoff_s=backoff,
            )
        self.sim.process(self._replay(tree_id, record, backoff))

    def _replay(self, tree_id: int, record: _PendingTree, backoff: float):
        if backoff > 0:
            yield self.sim.timeout(backoff)
        if tree_id not in self._pending:  # pragma: no cover - defensive
            return
        self._register_edges(tree_id, record)
        # Re-enqueue at the spout; a blocking put applies backpressure
        # instead of silently dropping the replay when the queue is full.
        yield record.executor.transfer_queue.put(record.envelope)

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def replayed_completions(self) -> List[CompletionRecord]:
        return [c for c in self.completions if c.attempts > 0]
