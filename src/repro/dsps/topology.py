"""Logical topology: a DAG of operators connected by grouped streams.

Mirrors Storm's ``TopologyBuilder``:

>>> topo = Topology("ride-hailing")
>>> topo.add_spout("requests", lambda: RequestSpout(...))
>>> topo.add_bolt("matching", lambda: MatchingBolt(...), parallelism=480,
...               inputs={"requests": AllGrouping()})

Operator factories are zero-argument callables so each task gets a fresh
operator instance (Storm's ``newInstance`` semantics in Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Union

from repro.dsps.api import Bolt, Spout
from repro.dsps.grouping import Grouping, make_grouping


@dataclass
class OperatorSpec:
    """One vertex of the topology DAG."""

    name: str
    kind: str  # "spout" | "bolt"
    factory: Callable[[], object]
    parallelism: int
    #: upstream operator name -> grouping (bolts only).
    inputs: Dict[str, Grouping] = field(default_factory=dict)
    #: True marks latency-measurement sinks.
    terminal: bool = False


class Topology:
    """The application DAG."""

    def __init__(self, name: str):
        self.name = name
        self.operators: Dict[str, OperatorSpec] = {}

    # ------------------------------------------------------------------
    def add_spout(
        self,
        name: str,
        factory: Callable[[], Spout],
        parallelism: int = 1,
    ) -> "Topology":
        self._check_new(name, parallelism)
        self.operators[name] = OperatorSpec(
            name=name, kind="spout", factory=factory, parallelism=parallelism
        )
        return self

    def add_bolt(
        self,
        name: str,
        factory: Callable[[], Bolt],
        parallelism: int,
        inputs: Dict[str, Union[Grouping, str]],
        terminal: bool = False,
    ) -> "Topology":
        """Groupings may be instances or registry names (``"shuffle"``,
        ``"consistent_hash"``, ...); names are resolved eagerly through
        :func:`~repro.dsps.grouping.make_grouping` so everything
        downstream sees real :class:`Grouping` objects."""
        self._check_new(name, parallelism)
        if not inputs:
            raise ValueError(f"bolt {name!r} needs at least one input")
        for upstream in inputs:
            if upstream not in self.operators:
                raise ValueError(
                    f"bolt {name!r} references unknown upstream {upstream!r}"
                )
        resolved = {
            up: make_grouping(g) if isinstance(g, str) else g
            for up, g in inputs.items()
        }
        self.operators[name] = OperatorSpec(
            name=name,
            kind="bolt",
            factory=factory,
            parallelism=parallelism,
            inputs=resolved,
            terminal=terminal,
        )
        return self

    # ------------------------------------------------------------------
    def spouts(self) -> List[OperatorSpec]:
        return [op for op in self.operators.values() if op.kind == "spout"]

    def bolts(self) -> List[OperatorSpec]:
        return [op for op in self.operators.values() if op.kind == "bolt"]

    def edges(self) -> List[tuple]:
        """Every ``(src_operator, dst_operator, grouping)`` edge of the
        DAG, in deterministic declaration order.  This is the wiring
        view execution backends consume: the DES builds multicast
        services from it and the :mod:`repro.rt` runtime builds its
        per-host grouping instances from it."""
        out: List[tuple] = []
        for op in self.operators.values():
            if op.kind != "bolt":
                continue
            for upstream, grouping in op.inputs.items():
                out.append((upstream, op.name, grouping))
        return out

    def downstream_of(self, name: str) -> List[OperatorSpec]:
        """Bolts consuming ``name``'s output stream."""
        return [
            op
            for op in self.operators.values()
            if op.kind == "bolt" and name in op.inputs
        ]

    def validate(self) -> None:
        """Check the DAG is well-formed (acyclic, spouts exist)."""
        if not self.spouts():
            raise ValueError(f"topology {self.name!r} has no spout")
        # Kahn's algorithm for cycle detection.
        indegree = {name: len(op.inputs) for name, op in self.operators.items()}
        frontier = [n for n, d in indegree.items() if d == 0]
        seen = 0
        while frontier:
            cur = frontier.pop()
            seen += 1
            for down in self.downstream_of(cur):
                indegree[down.name] -= 1
                if indegree[down.name] == 0:
                    frontier.append(down.name)
        if seen != len(self.operators):
            raise ValueError(f"topology {self.name!r} contains a cycle")

    # ------------------------------------------------------------------
    def _check_new(self, name: str, parallelism: int) -> None:
        if name in self.operators:
            raise ValueError(f"duplicate operator name {name!r}")
        if parallelism < 1:
            raise ValueError(
                f"parallelism of {name!r} must be >= 1, got {parallelism}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{op.name}x{op.parallelism}" for op in self.operators.values()
        )
        return f"Topology({self.name!r}: {parts})"
