"""Task placement (the Nimbus role).

One worker process per machine (the paper's deployment: "each machine
contains one worker process which hosts ... task threads").  Tasks of
each operator are assigned round-robin across machines, so an operator
with parallelism 480 on 30 machines puts 16 instances on every worker —
the co-location that makes worker-oriented communication pay off.

Spouts are placed first, starting at machine 0, then bolts continue the
round-robin; this keeps the source instance's machine deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dsps.topology import Topology
from repro.net.cluster import Cluster


@dataclass
class Placement:
    """The result of scheduling a topology onto a cluster."""

    #: task id -> machine id
    machine_of: Dict[int, int] = field(default_factory=dict)
    #: operator name -> ordered task ids
    tasks_of: Dict[str, List[int]] = field(default_factory=dict)
    #: task id -> operator name
    operator_of: Dict[int, str] = field(default_factory=dict)
    #: task id -> index within its operator
    index_of: Dict[int, int] = field(default_factory=dict)

    def tasks_on_machine(self, machine_id: int) -> List[int]:
        return [t for t, m in self.machine_of.items() if m == machine_id]

    def machines_hosting(self, operator: str) -> List[int]:
        """Machines hosting at least one task of ``operator`` (sorted)."""
        return sorted({self.machine_of[t] for t in self.tasks_of[operator]})

    def colocated_tasks(self, operator: str, machine_id: int) -> List[int]:
        """Tasks of ``operator`` placed on ``machine_id`` (ordered)."""
        return [
            t
            for t in self.tasks_of[operator]
            if self.machine_of[t] == machine_id
        ]


def schedule(topology: Topology, cluster: Cluster) -> Placement:
    """Round-robin placement of every task onto the cluster."""
    topology.validate()
    placement = Placement()
    next_task_id = 0
    cursor = 0
    n_machines = len(cluster)
    ordered = topology.spouts() + topology.bolts()
    for op in ordered:
        ids: List[int] = []
        for index in range(op.parallelism):
            task_id = next_task_id
            next_task_id += 1
            machine = cursor % n_machines
            cursor += 1
            placement.machine_of[task_id] = machine
            placement.operator_of[task_id] = op.name
            placement.index_of[task_id] = index
            ids.append(task_id)
        placement.tasks_of[op.name] = ids
    return placement
