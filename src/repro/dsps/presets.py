"""Baseline system presets.

The Whale presets (Whale-WOC, Whale-WOC-RDMA, Whale-WOC-RDMA-Nonblock)
live in :mod:`repro.core.whale`; here are the systems Whale is compared
against in Section 5.
"""

from __future__ import annotations

from typing import Optional

from repro.dsps.config import SystemConfig
from repro.net.costs import CostModel
from repro.net.rdma import Verb


def storm_config(costs: Optional[CostModel] = None, **overrides) -> SystemConfig:
    """Apache Storm: instance-oriented communication over TCP/IP,
    sequential one-to-many transmission."""
    cfg = SystemConfig(
        name="storm",
        transport="tcp",
        worker_oriented=False,
        multicast="sequential",
        adaptive=False,
        slicing=False,
        costs=costs or CostModel(),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def rdma_storm_config(
    costs: Optional[CostModel] = None, **overrides
) -> SystemConfig:
    """RDMA-based Storm (Yang et al.): Storm's TCP replaced by two-sided
    RDMA send/recv; communication stays instance-oriented and one-to-many
    transmission stays sequential, so serialization still dominates."""
    cfg = SystemConfig(
        name="rdma-storm",
        transport="rdma",
        data_verb=Verb.SEND,
        worker_oriented=False,
        multicast="sequential",
        adaptive=False,
        slicing=False,
        costs=costs or CostModel(),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def rdmc_config(costs: Optional[CostModel] = None, **overrides) -> SystemConfig:
    """RDMC (Behrens et al.): a *static* binomial multicast tree over the
    destination instances on RDMA; no worker-oriented batching, no
    structure adaptation."""
    cfg = SystemConfig(
        name="rdmc",
        transport="rdma",
        data_verb=Verb.SEND,
        worker_oriented=False,
        multicast="binomial",
        adaptive=False,
        slicing=False,
        costs=costs or CostModel(),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg
