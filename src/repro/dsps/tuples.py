"""Tuple model.

A :class:`StreamTuple` is the logical unit of data; ``payload_bytes`` is
its serialized data-item size (what the cost model charges for).  An
:class:`AddressedTuple` is a tuple bound for one specific task — the unit
a worker's dispatcher hands to a local executor (Section 4's
``AddressedTuple``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_tuple_ids = itertools.count()


def reset_ids() -> None:
    """Restart tuple-id allocation (called per system build so traces
    are reproducible regardless of prior runs in the process)."""
    global _tuple_ids
    _tuple_ids = itertools.count()


@dataclass
class StreamTuple:
    """One logical data item flowing through the topology."""

    stream: str
    values: Any
    key: Optional[Any] = None
    payload_bytes: int = 128
    #: Simulated time the tuple entered the system (spout emit).
    created_at: float = 0.0
    #: Operator that emitted this tuple.
    source_operator: str = ""
    tuple_id: int = field(default_factory=lambda: next(_tuple_ids))
    #: Id of the root (spout) tuple this one descends from, for
    #: end-to-end latency tracking across operator hops.
    root_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError(
                f"payload_bytes must be positive, got {self.payload_bytes}"
            )
        if self.root_id is None:
            self.root_id = self.tuple_id

    def derive(
        self,
        stream: str,
        values: Any,
        key: Optional[Any] = None,
        payload_bytes: Optional[int] = None,
        source_operator: str = "",
    ) -> "StreamTuple":
        """Create a child tuple anchored to this tuple's root."""
        return StreamTuple(
            stream=stream,
            values=values,
            key=key,
            payload_bytes=payload_bytes or self.payload_bytes,
            created_at=self.created_at,
            source_operator=source_operator,
            root_id=self.root_id,
        )


@dataclass
class AddressedTuple:
    """A tuple addressed to one destination task."""

    task_id: int
    tuple: StreamTuple
