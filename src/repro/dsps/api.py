"""User-facing operator API: Spouts and Bolts.

A **Spout** produces the stream: the executor asks it for the next values
whenever the arrival process fires.  A **Bolt** consumes tuples: the
executor charges :meth:`Bolt.service_time` of CPU, then calls
:meth:`Bolt.execute`, which may emit derived tuples through the collector.

Performance is simulated (service times come from the cost model /
``service_time``), while the *logic* is real Python — bolts genuinely
join, match, and aggregate, so applications are testable for correctness
independent of the performance model.

These contracts are **backend-neutral**: the same operator classes run
under the discrete-event backend (:class:`~repro.dsps.system.DspsSystem`)
and under the wall-clock asyncio runtime (:mod:`repro.rt`).  Only the
meaning of ``service_time`` differs — the DES *charges* it to the
simulated CPU, while the real runtime ignores it (real execution time is
whatever the Python logic costs).  Operators that should survive on the
real runtime must keep their emitted values JSON-serializable (the rt
wire format) and treat :meth:`prepare`/:meth:`close` as their only
lifecycle hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol, Tuple

from repro.dsps.tuples import StreamTuple


@dataclass
class TupleContext:
    """What an operator learns about its placement at prepare time."""

    task_id: int
    task_index: int  # 0-based index among the operator's tasks
    parallelism: int
    operator: str
    machine_id: int


class Collector(Protocol):
    """Emission interface handed to bolts (implemented by the executor)."""

    def emit(
        self,
        stream: str,
        values: Any,
        key: Optional[Any] = None,
        payload_bytes: Optional[int] = None,
        anchor: Optional[StreamTuple] = None,
    ) -> None: ...


class Spout:
    """Stream source.  Subclasses override :meth:`next_tuple`."""

    #: Default serialized size of emitted data items.
    payload_bytes: int = 128
    #: CPU cost of producing one tuple (reading from Kafka, parsing, ...).
    emit_service_s: float = 1.0e-6

    def prepare(self, ctx: TupleContext) -> None:
        """Called once before the first tuple."""

    def next_tuple(self) -> Tuple[Any, Optional[Any], int]:
        """Produce ``(values, key, payload_bytes)`` for the next tuple."""
        raise NotImplementedError

    def close(self) -> None:
        """Teardown hook: the real runtime calls this once at shutdown
        (simulated runs never tear operators down)."""


class Bolt:
    """Stream operator.  Subclasses override :meth:`execute`."""

    #: Fixed part of the per-tuple service time.
    base_service_s: float = 1.0e-6

    def prepare(self, ctx: TupleContext) -> None:
        """Called once before the first tuple."""

    def service_time(self, tup: StreamTuple) -> float:
        """Simulated CPU seconds to process ``tup`` (default: fixed)."""
        return self.base_service_s

    def execute(self, tup: StreamTuple, collector: Collector) -> None:
        """Process ``tup``; emit derived tuples via ``collector``."""

    def close(self) -> None:
        """Teardown hook: the real runtime calls this once at shutdown
        (simulated runs never tear operators down)."""
