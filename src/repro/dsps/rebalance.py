"""Runtime partition rebalancing: migrate load off overloaded workers.

Two pieces, enabled together by ``SystemConfig.rebalance``:

* :class:`PartitionRouter` — the routing directory.  For every operator
  it owns a **live task list** (initially the placement order) that
  every upstream executor's grouping routes through.  Parking a task
  removes it from the list *in place* — every emitter sees the change on
  its next ``choose`` with no executor rebuild — and restoring re-inserts
  it at its original placement position, so a fully-restored operator
  routes exactly as it did before any migration.

* :class:`Rebalancer` — a periodic control process mirroring the
  Section 3.3 waterline rule, applied to executor *input* queues: when a
  task's input depth crosses the migration waterline it is parked
  (migrated off), and once it drains below the restore level it comes
  back.  Decisions respect a cooldown per operator, never park the last
  ``min_active`` tasks, and never restore onto a crashed machine.

**Conservation-safe handoff.** A migration only redirects *future*
routing choices; the parked executor keeps running and drains every
tuple already queued to it, so no tuple is lost or duplicated across a
migration — the invariant layer's conservation checks (and the
``partition_routing`` invariant over the router's directory) hold
throughout.  One-to-many (broadcast) edges are exempt by construction:
they always fan out over the pristine placement list, keeping multicast
trees and completion trackers on stable membership.

Migrations emit ``rebalance.migrate`` / ``rebalance.restore`` trace
records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.dsps.grouping import inqueue_depth

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsps.system import DspsSystem


class PartitionRouter:
    """Live routing directory: active (routable) tasks per operator."""

    def __init__(self, system: "DspsSystem"):
        self.system = system
        placement = system.placement
        #: operator -> live task list; executors hold references to these
        #: exact list objects, so membership edits are visible instantly.
        self._active: Dict[str, List[int]] = {
            op: list(tasks) for op, tasks in placement.tasks_of.items()
        }
        self._parked: Dict[str, set] = {op: set() for op in placement.tasks_of}

    def active_tasks(self, operator: str) -> List[int]:
        """The live (shared, mutable) task list of ``operator``."""
        return self._active[operator]

    def parked_tasks(self, operator: str) -> List[int]:
        return sorted(self._parked[operator])

    def is_parked(self, task_id: int) -> bool:
        operator = self.system.placement.operator_of[task_id]
        return task_id in self._parked[operator]

    def _rewire(self, operator: str) -> None:
        """Rebuild the live list in place, preserving placement order."""
        parked = self._parked[operator]
        placed = self.system.placement.tasks_of[operator]
        self._active[operator][:] = [t for t in placed if t not in parked]

    def park(self, operator: str, task_id: int) -> None:
        """Remove ``task_id`` from the routable set of ``operator``."""
        parked = self._parked[operator]
        if task_id in parked:
            raise RuntimeError(f"task {task_id} is already parked")
        if len(self._active[operator]) <= 1:
            raise RuntimeError(
                f"cannot park the last routable task of {operator!r}"
            )
        parked.add(task_id)
        self._rewire(operator)

    def restore(self, operator: str, task_id: int) -> None:
        """Return ``task_id`` to its placement position in the live list."""
        parked = self._parked[operator]
        if task_id not in parked:
            raise RuntimeError(f"task {task_id} is not parked")
        parked.discard(task_id)
        self._rewire(operator)


class Rebalancer:
    """Waterline-driven migration controller over the router."""

    def __init__(self, system: "DspsSystem"):
        self.system = system
        config = system.config
        self.interval_s = config.rebalance_interval_s
        self.waterline = config.rebalance_waterline
        self.restore_level = (
            config.rebalance_restore_fraction * self.waterline
        )
        self.cooldown_s = config.rebalance_cooldown_s
        self.migrations = 0
        self.restores = 0
        self._last_migration: Dict[str, float] = {}
        #: operators the rebalancer manages: bolts with >1 task that are
        #: reached by at least one non-broadcast edge (broadcast-only
        #: operators have nothing to rebalance — every task gets every
        #: tuple regardless).
        self._operators = [
            op.name
            for op in system.topology.bolts()
            if op.parallelism > 1
            and any(not g.one_to_many for g in op.inputs.values())
        ]

    def start(self) -> None:
        self.system.sim.process(self._loop())

    def _loop(self):
        while True:
            yield self.system.sim.timeout(self.interval_s)
            self.scan()

    # ------------------------------------------------------------------
    def _depth(self, task_id: int) -> int:
        return inqueue_depth(self.system.executors[task_id])

    def min_active(self, operator: str) -> int:
        """Never migrate below half the placed parallelism (and never to
        zero): shedding capacity is not a cure for overload."""
        placed = len(self.system.placement.tasks_of[operator])
        return max(1, placed // 2)

    def scan(self) -> None:
        """One control round: park over-waterline tasks, restore drained
        ones (restores first, so capacity returns before more leaves)."""
        system = self.system
        router = system.partition_router
        now = system.sim.now
        tracer = system.sim.tracer
        for operator in self._operators:
            for task_id in router.parked_tasks(operator):
                ex = system.executors[task_id]
                if system.machine_is_crashed(ex.machine_id):
                    continue
                depth = self._depth(task_id)
                if depth > self.restore_level:
                    continue
                router.restore(operator, task_id)
                self.restores += 1
                system.metrics.on_partition_restored()
                if tracer is not None:
                    tracer.emit(
                        "rebalance.restore",
                        now,
                        operator=operator,
                        task=task_id,
                        machine=ex.machine_id,
                        depth=depth,
                        active=len(router.active_tasks(operator)),
                    )
            last = self._last_migration.get(operator)
            if last is not None and now - last < self.cooldown_s:
                continue
            active = router.active_tasks(operator)
            if len(active) <= self.min_active(operator):
                continue
            # Park the single worst offender per round (stable choice:
            # deepest queue, placement order breaking ties).
            worst_task = None
            worst_depth = -1
            for task_id in active:
                depth = self._depth(task_id)
                if depth > worst_depth:
                    worst_task, worst_depth = task_id, depth
            if worst_task is None or worst_depth < self.waterline:
                continue
            ex = system.executors[worst_task]
            router.park(operator, worst_task)
            self.migrations += 1
            self._last_migration[operator] = now
            system.metrics.on_partition_migrated()
            if tracer is not None:
                tracer.emit(
                    "rebalance.migrate",
                    now,
                    operator=operator,
                    task=worst_task,
                    machine=ex.machine_id,
                    depth=worst_depth,
                    waterline=self.waterline,
                    active=len(router.active_tasks(operator)),
                )
