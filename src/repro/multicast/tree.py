"""The multicast tree structure.

Nodes are opaque hashable ids (task ids, worker ids, ...); the source is
the distinguished :data:`SOURCE` sentinel unless a custom root is given.
The tree records, per node, its parent, its children **in attachment
order** (attachment order is transmission order during relay), and its
logical layer per Algorithm 1's layered construction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional

Node = Hashable


class _Source:
    """Sentinel node id for the source instance ``S``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "S"


SOURCE: Node = _Source()


class TreeError(ValueError):
    """Structural violation in a multicast tree."""


class MulticastTree:
    """A rooted tree with ordered children and per-node logical layers."""

    def __init__(self, root: Node = SOURCE):
        self.root: Node = root
        self._children: Dict[Node, List[Node]] = {root: []}
        self._parent: Dict[Node, Node] = {}
        self._layer: Dict[Node, int] = {root: 0}

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add(self, node: Node, parent: Node, layer: Optional[int] = None) -> None:
        """Attach ``node`` under ``parent``."""
        if node in self._children:
            raise TreeError(f"node {node!r} already in tree")
        if parent not in self._children:
            raise TreeError(f"parent {parent!r} not in tree")
        self._children[parent].append(node)
        self._children[node] = []
        self._parent[node] = parent
        self._layer[node] = (
            layer if layer is not None else self._layer[parent] + 1
        )

    def move(self, node: Node, new_parent: Node) -> None:
        """Re-attach ``node`` (with its whole subtree) under ``new_parent``.

        Layers of the moved subtree are recomputed from the new position.
        """
        if node == self.root:
            raise TreeError("cannot move the root")
        if node not in self._children:
            raise TreeError(f"node {node!r} not in tree")
        if new_parent not in self._children:
            raise TreeError(f"new parent {new_parent!r} not in tree")
        # Reject cycles: new_parent must not be inside node's subtree.
        cursor = new_parent
        while cursor in self._parent:
            if cursor == node:
                raise TreeError(
                    f"moving {node!r} under its own descendant {new_parent!r}"
                )
            cursor = self._parent[cursor]
        if cursor == node:
            raise TreeError(
                f"moving {node!r} under its own descendant {new_parent!r}"
            )
        old_parent = self._parent[node]
        self._children[old_parent].remove(node)
        self._children[new_parent].append(node)
        self._parent[node] = new_parent
        self._relayer(node, self._layer[new_parent] + 1)

    def remove_leaf(self, node: Node) -> None:
        """Detach a childless node from the tree (failure repair: a dead
        node is removed once its subtrees have been moved elsewhere)."""
        if node == self.root:
            raise TreeError("cannot remove the root")
        if node not in self._children:
            raise TreeError(f"node {node!r} not in tree")
        if self._children[node]:
            raise TreeError(
                f"node {node!r} still has children; move them first"
            )
        parent = self._parent.pop(node)
        self._children[parent].remove(node)
        del self._children[node]
        del self._layer[node]

    def _relayer(self, node: Node, layer: int) -> None:
        self._layer[node] = layer
        for child in self._children[node]:
            self._relayer(child, layer + 1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._children

    def __len__(self) -> int:
        """Number of nodes including the root."""
        return len(self._children)

    @property
    def n_destinations(self) -> int:
        return len(self._children) - 1

    def children(self, node: Node) -> List[Node]:
        return list(self._children[node])

    def parent(self, node: Node) -> Optional[Node]:
        return self._parent.get(node)

    def layer(self, node: Node) -> int:
        return self._layer[node]

    def out_degree(self, node: Node) -> int:
        return len(self._children[node])

    def max_out_degree(self) -> int:
        return max(len(c) for c in self._children.values())

    def depth(self) -> int:
        """Longest root-to-leaf edge count."""
        return max(self._layer.values())

    def destinations(self) -> List[Node]:
        """All nodes except the root, in BFS order."""
        return [n for n in self.bfs() if n != self.root]

    def bfs(self) -> Iterator[Node]:
        """Breadth-first traversal from the root, children in order."""
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            yield node
            queue.extend(self._children[node])

    def subtree_nodes(self, node: Node) -> List[Node]:
        """``node`` and all its descendants (preorder)."""
        out = [node]
        stack = list(reversed(self._children[node]))
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(reversed(self._children[cur]))
        return out

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self, d_star: Optional[int] = None) -> None:
        """Raise :class:`TreeError` on any structural violation.

        Checks parent/child consistency, connectivity, acyclicity, and —
        if ``d_star`` is given — the out-degree cap.
        """
        seen = set()
        for node in self.bfs():
            if node in seen:
                raise TreeError(f"cycle or duplicate at {node!r}")
            seen.add(node)
            for child in self._children[node]:
                if self._parent.get(child) != node:
                    raise TreeError(
                        f"parent pointer of {child!r} disagrees with "
                        f"child list of {node!r}"
                    )
                if self._layer[child] <= self._layer[node]:
                    raise TreeError(
                        f"layer of {child!r} not below its parent {node!r}"
                    )
        if seen != set(self._children):
            unreachable = set(self._children) - seen
            raise TreeError(f"unreachable nodes: {unreachable!r}")
        if d_star is not None:
            for node, children in self._children.items():
                if len(children) > d_star:
                    raise TreeError(
                        f"out-degree of {node!r} is {len(children)} > "
                        f"d* = {d_star}"
                    )

    def copy(self) -> "MulticastTree":
        clone = MulticastTree(root=self.root)
        clone._children = {n: list(c) for n, c in self._children.items()}
        clone._parent = dict(self._parent)
        clone._layer = dict(self._layer)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MulticastTree(n={self.n_destinations}, depth={self.depth()}, "
            f"max_degree={self.max_out_degree()})"
        )
