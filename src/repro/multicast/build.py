"""Multicast tree builders.

:func:`build_nonblocking_tree` is a line-by-line transcription of the
paper's Algorithm 1: the tree grows in rounds (logical layers); in each
round, every already-connected node whose out-degree is below ``d*``
connects exactly one new destination instance.  With ``d* = inf`` this
degenerates to the classic binomial multicast tree (RDMC); with the list
of destinations attached entirely to the source it degenerates to Storm's
sequential multicast.  All three builders return the same
:class:`~repro.multicast.tree.MulticastTree` type so the relay machinery
and the analytics are structure-agnostic.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.multicast.model import binomial_out_degree
from repro.multicast.tree import SOURCE, MulticastTree, Node


def _check_destinations(destinations: Sequence[Node]) -> List[Node]:
    dests = list(destinations)
    if not dests:
        raise ValueError("need at least one destination instance")
    if len(set(dests)) != len(dests):
        raise ValueError("duplicate destination ids")
    return dests


def build_nonblocking_tree(
    destinations: Sequence[Node],
    d_star: int,
    root: Node = SOURCE,
) -> MulticastTree:
    """Algorithm 1: build the non-blocking multicast tree.

    Parameters
    ----------
    destinations:
        Destination instances ``T_1 .. T_n`` in assignment order (the
        order determines which instance lands on which layer, exactly as
        ``tClass.newInstance`` consumes them in the paper).
    d_star:
        Maximum out-degree for every node including the source.
    """
    if d_star < 1:
        raise ValueError(f"d* must be >= 1, got {d_star}")
    dests = _check_destinations(destinations)
    tree = MulticastTree(root=root)
    remaining = iter(dests)
    assigned = 0
    n = len(dests)
    # `connected` mirrors Algorithm 1's `list` (in insertion order).
    connected: List[Node] = [root]
    layer = 0
    while assigned < n:
        layer += 1
        made_progress = False
        # Snapshot: only nodes connected before this round relay in it.
        for node in list(connected):
            if tree.out_degree(node) >= d_star:
                continue
            try:
                new_instance = next(remaining)
            except StopIteration:  # pragma: no cover - guarded by assigned<n
                break
            tree.add(new_instance, parent=node, layer=layer)
            connected.append(new_instance)
            assigned += 1
            made_progress = True
            if assigned >= n:
                return tree
        if not made_progress:  # pragma: no cover - cannot happen for d*>=1
            raise RuntimeError("Algorithm 1 stalled (internal error)")
    return tree


def build_binomial_tree(
    destinations: Sequence[Node], root: Node = SOURCE
) -> MulticastTree:
    """RDMC-style static binomial multicast tree.

    Equivalent to Algorithm 1 with an uncapped out-degree: the connected
    set doubles every round, giving the source out-degree
    ``ceil(log2(n+1))``.
    """
    dests = _check_destinations(destinations)
    return build_nonblocking_tree(
        dests, d_star=binomial_out_degree(len(dests)), root=root
    )


def build_sequential_tree(
    destinations: Sequence[Node], root: Node = SOURCE
) -> MulticastTree:
    """Storm's sequential multicast as a depth-1 'tree': the source sends
    to every destination itself, one after another."""
    dests = _check_destinations(destinations)
    tree = MulticastTree(root=root)
    for i, dst in enumerate(dests, start=1):
        # All on layer 1 structurally; transmission order = list order.
        tree.add(dst, parent=root, layer=1)
    return tree
