"""Dynamic switching of the multicast structure (Section 3.4).

When the monitor changes ``d*``, Whale does **not** rebuild the tree; it
incrementally rewires it:

* **Negative scale-down** (``d*`` decreased): traverse from ``S`` layer by
  layer; for every node whose out-degree now exceeds ``d*``, detach the
  sub-trees that push it over the cap (the last-attached children), then
  re-insert each detached sub-tree at the first position (BFS from ``S``)
  whose out-degree is below ``d*``.
* **Active scale-up** (``d*`` increased): walk from the last (deepest)
  destination instance toward ``S``; move each onto the first node (BFS
  from ``S``) with spare out-degree on a strictly shallower layer; stop
  once the best available position is on the same logical layer as the
  instance's current one.

Both produce a :class:`SwitchPlan` — the list of disconnect/connect
operations that the multicast controller ships to destination instances
as *ControlMessages* and that the DES applies after the switching delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

from repro.multicast.tree import MulticastTree, Node, TreeError


@dataclass(frozen=True)
class RewireOp:
    """Move ``node`` (and its subtree) from ``old_parent`` to ``new_parent``."""

    node: Node
    old_parent: Node
    new_parent: Node


@dataclass(frozen=True)
class ControlMessage:
    """What the multicast controller multicasts to destination instances.

    ``status`` tells receivers which switching mode runs; ``op`` tells the
    two affected endpoints to disconnect/establish an RDMA channel.
    """

    status: Literal["scale_down", "scale_up", "repair", "reattach"]
    op: RewireOp


@dataclass
class SwitchPlan:
    """A complete structure adjustment."""

    status: Literal["scale_down", "scale_up", "noop", "repair", "reattach"]
    d_star: int
    ops: List[RewireOp] = field(default_factory=list)

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def control_messages(self) -> List[ControlMessage]:
        if self.status == "noop":
            return []
        return [ControlMessage(status=self.status, op=op) for op in self.ops]


# ----------------------------------------------------------------------
def plan_switch(tree: MulticastTree, new_d_star: int) -> Tuple[MulticastTree, SwitchPlan]:
    """Compute the rewired tree and the operation plan for ``new_d_star``.

    The input tree is not modified; a rewired copy is returned together
    with the plan.  The returned tree always satisfies the new cap.
    """
    if new_d_star < 1:
        raise ValueError(f"d* must be >= 1, got {new_d_star}")
    work = tree.copy()
    if work.max_out_degree() > new_d_star:
        ops = _scale_down(work, new_d_star)
        status: str = "scale_down"
    else:
        ops = _scale_up(work, new_d_star)
        status = "scale_up" if ops else "noop"
    work.validate(d_star=new_d_star)
    return work, SwitchPlan(status=status, d_star=new_d_star, ops=ops)  # type: ignore[arg-type]


def apply_plan(
    tree: MulticastTree,
    plan: SwitchPlan,
    tracer=None,
    now: float = 0.0,
) -> None:
    """Apply a plan's operations to ``tree`` in place.

    When a :class:`~repro.trace.Tracer` is given, every applied
    :class:`RewireOp` is recorded as a ``switch.rewire`` event stamped
    ``now`` (callers pass the simulated apply time).
    """
    for op in plan.ops:
        if tree.parent(op.node) != op.old_parent:
            raise TreeError(
                f"plan expects {op.node!r} under {op.old_parent!r}, found "
                f"{tree.parent(op.node)!r}"
            )
        tree.move(op.node, op.new_parent)
        if tracer is not None:
            tracer.emit(
                "switch.rewire",
                now,
                direction=plan.status,
                node=op.node,
                old_parent=op.old_parent,
                new_parent=op.new_parent,
            )


def plan_repair(
    tree: MulticastTree, failed: Node, d_star: int
) -> Tuple[MulticastTree, SwitchPlan]:
    """Excise a failed relay and reattach its orphaned subtrees.

    Every child of ``failed`` is moved (with its whole subtree) to the
    first BFS position with spare out-degree — the same first-open-slot
    rule Section 3.4's scale-down uses — never choosing the failed node
    itself.  The failed node is then removed from the tree.  The input
    tree is not modified; the repaired copy is returned with the plan.
    """
    if failed == tree.root:
        raise TreeError("cannot repair away the root (source) node")
    if failed not in tree:
        raise TreeError(f"failed node {failed!r} not in tree")
    work = tree.copy()
    ops: List[RewireOp] = []
    banned = {failed}
    # The failed node still occupies a slot at its parent while the plan
    # is computed, but excision will free it — count it as open or a
    # d*-saturated tree (e.g. a chain at d* = 1) becomes unrepairable.
    vacated = work.parent(failed)
    for child in work.children(failed):
        new_parent = _first_open_slot(
            work, d_star, exclude_subtree_of=child, banned=banned,
            vacated=vacated,
        )
        if new_parent is None:  # pragma: no cover - tree always has room
            raise TreeError(
                f"no position with out-degree < {d_star} available"
            )
        ops.append(RewireOp(child, failed, new_parent))
        work.move(child, new_parent)
    work.remove_leaf(failed)
    work.validate()
    return work, SwitchPlan(status="repair", d_star=d_star, ops=ops)


def plan_reattach(
    tree: MulticastTree, node: Node, d_star: int
) -> Tuple[MulticastTree, SwitchPlan]:
    """Re-admit a recovered node as a leaf at the first open slot."""
    if node in tree:
        raise TreeError(f"node {node!r} already in tree")
    work = tree.copy()
    new_parent = _first_open_slot(work, d_star)
    if new_parent is None:  # pragma: no cover - root always exists
        raise TreeError(f"no position with out-degree < {d_star} available")
    work.add(node, new_parent)
    work.validate()
    return work, SwitchPlan(
        status="reattach",
        d_star=d_star,
        ops=[RewireOp(node, node, new_parent)],
    )


# ----------------------------------------------------------------------
# negative scale-down
# ----------------------------------------------------------------------
def _scale_down(tree: MulticastTree, d_star: int) -> List[RewireOp]:
    ops: List[RewireOp] = []
    # Repeated passes: reattached subtrees may themselves contain nodes
    # exceeding the new cap (their internal degrees were legal under the
    # old, larger d*).  Each pass strictly reduces total excess degree.
    for _pass in range(len(tree) + 1):
        marked: List[Tuple[Node, Node]] = []  # (subtree root, old parent)
        for node in tree.bfs():
            excess = tree.out_degree(node) - d_star
            if excess > 0:
                # The last-attached children are the ones that pushed the
                # node over the cap.
                for child in tree.children(node)[d_star:]:
                    marked.append((child, node))
        if not marked:
            return ops
        for child, old_parent in marked:
            new_parent = _first_open_slot(
                tree, d_star, exclude_subtree_of=child
            )
            if new_parent is None:  # pragma: no cover - tree always has room
                raise TreeError(
                    f"no position with out-degree < {d_star} available"
                )
            ops.append(RewireOp(child, old_parent, new_parent))
            tree.move(child, new_parent)
    raise TreeError("scale-down failed to converge")  # pragma: no cover


def _first_open_slot(
    tree: MulticastTree,
    d_star: int,
    exclude_subtree_of: Optional[Node] = None,
    banned: Optional[set] = None,
    vacated: Optional[Node] = None,
) -> Optional[Node]:
    """First node in BFS order with out-degree below ``d*``.

    Excludes the subtree being moved (attaching there would form a cycle)
    and any explicitly ``banned`` nodes (e.g. a failed relay during
    repair).  ``vacated`` names a node about to lose one child (the
    failed relay's parent); its out-degree counts one lower.
    """
    excluded = (
        set(tree.subtree_nodes(exclude_subtree_of))
        if exclude_subtree_of is not None
        else set()
    )
    if banned:
        excluded |= banned
    for node in tree.bfs():
        if node in excluded:
            continue
        degree = tree.out_degree(node)
        if node == vacated:
            degree -= 1
        if degree < d_star:
            return node
    return None


# ----------------------------------------------------------------------
# active scale-up
# ----------------------------------------------------------------------
def _scale_up(tree: MulticastTree, d_star: int) -> List[RewireOp]:
    ops: List[RewireOp] = []
    # Each move strictly decreases the sum of node layers (bounded by n^2).
    for _round in range(len(tree) ** 2 + 1):
        node = _deepest_last_instance(tree)
        if node is None:
            return ops
        new_parent = _first_open_slot(tree, d_star, exclude_subtree_of=node)
        if new_parent is None:
            return ops
        # Stop once the reachable position no longer shortens the path:
        # "the original position and the new position ... are on the same
        # logical layer".
        if tree.layer(new_parent) + 1 >= tree.layer(node):
            return ops
        old_parent = tree.parent(node)
        assert old_parent is not None
        ops.append(RewireOp(node, old_parent, new_parent))
        tree.move(node, new_parent)
    raise TreeError("scale-up failed to converge")  # pragma: no cover


def _deepest_last_instance(tree: MulticastTree) -> Optional[Node]:
    """The last destination instance on the maximum layer (the paper
    walks 'from the last destination instance to S')."""
    best: Optional[Node] = None
    best_layer = 0
    for node in tree.bfs():
        if node == tree.root:
            continue
        layer = tree.layer(node)
        if layer >= best_layer:
            best, best_layer = node, layer
    return best
