"""Multicast capability analysis (Definitions 1–2, Theorems 1–2).

Two complementary views:

* :func:`capability_series` — the paper's closed-form recurrences for
  ``L(t)``, the number of nodes holding the tuple after ``t`` time units
  (Eq. 6 uncapped / Eq. 7 capped at ``d*``);
* :func:`receive_time_units` — the exact per-node receive times for any
  concrete :class:`~repro.multicast.tree.MulticastTree` under relay
  semantics (each node forwards to its children one per time unit, in
  attachment order).  For trees built by Algorithm 1 the two views agree.
"""

from __future__ import annotations

from typing import Dict, List

from repro.multicast.model import binomial_out_degree
from repro.multicast.tree import MulticastTree, Node


def capability_series(d_star: int, n_destinations: int, t_max: int) -> List[int]:
    """``[L(0), L(1), ..., L(t_max)]`` per Eq. (6)/(7).

    ``L(t)`` counts all nodes (source included) reached after ``t`` time
    units, capped at ``n_destinations + 1``.
    """
    if d_star < 1:
        raise ValueError(f"d* must be >= 1, got {d_star}")
    if n_destinations < 1:
        raise ValueError(f"n must be >= 1, got {n_destinations}")
    if t_max < 0:
        raise ValueError(f"t_max must be >= 0, got {t_max}")
    total = n_destinations + 1
    uncapped = d_star >= binomial_out_degree(n_destinations)
    series = [1]
    for t in range(1, t_max + 1):
        if uncapped or t <= d_star:
            nxt = 2 * series[t - 1]  # Eq. (6)
        else:
            nxt = 2 * series[t - 1] - series[t - d_star - 1]  # Eq. (7)
        series.append(min(nxt, total))
    return series


def time_units_to_reach(d_star: int, n_destinations: int) -> int:
    """Smallest ``t`` with ``L(t) >= n + 1`` — multicast completion time
    in relay time units."""
    total = n_destinations + 1
    t = 0
    series = [1]
    # L(t) grows at least by 1 per unit once the tree is rooted, so this
    # terminates in at most `total` steps.
    while series[-1] < total:
        t += 1
        uncapped = d_star >= binomial_out_degree(n_destinations)
        if uncapped or t <= d_star:
            nxt = 2 * series[t - 1]
        else:
            nxt = 2 * series[t - 1] - series[t - d_star - 1]
        series.append(min(nxt, total))
        if t > 4 * total:  # pragma: no cover - safety net
            raise RuntimeError("capability recurrence failed to converge")
    return t


def receive_time_units(tree: MulticastTree) -> Dict[Node, int]:
    """Exact receive time (in relay time units) of every node of ``tree``.

    Relay semantics: a node that received the tuple at time ``r`` sends
    it to its children at times ``r+1, r+2, ...`` in attachment order.
    The root holds the tuple at time 0.
    """
    times: Dict[Node, int] = {tree.root: 0}
    for node in tree.bfs():
        base = times[node]
        for slot, child in enumerate(tree.children(node), start=1):
            times[child] = base + slot
    return times


def completion_time_units(tree: MulticastTree) -> int:
    """Time units until the last destination receives one tuple."""
    return max(receive_time_units(tree).values())


def pipelined_interval_units(tree: MulticastTree) -> int:
    """Time units between consecutive tuples leaving the source in a
    saturated pipeline — the source's out-degree (it must finish all its
    own transmissions of tuple *k* before starting tuple *k+1*)."""
    return max(1, tree.out_degree(tree.root))
