"""One-to-many multicast structures — the paper's core contribution.

* :mod:`repro.multicast.model` — the M/D/1 queueing model of the source's
  transfer queue (Eq. 1–5): processing rate, average queue length, the
  maximum affordable out-degree ``d*`` and input rate ``M``.
* :mod:`repro.multicast.tree` — the multicast tree data structure and its
  invariants.
* :mod:`repro.multicast.build` — Algorithm 1 (non-blocking multicast tree
  construction) plus the binomial (RDMC) and sequential (Storm) builders.
* :mod:`repro.multicast.capability` — the multicast capability ``L(t)``
  recurrences (Eq. 6/7, Theorems 1–2) and exact per-node receive-time
  schedules for any tree.
* :mod:`repro.multicast.switching` — dynamic switching (Section 3.4):
  negative scale-down and active scale-up rewiring plans.
"""

from repro.multicast.model import (
    MD1Model,
    avg_queue_length,
    binomial_out_degree,
    max_affordable_input_rate,
    max_out_degree,
    max_out_degree_paper_eq3,
    nonblocking_source_degree,
    processing_rate,
    processing_rate_worker_oriented,
)
from repro.multicast.tree import MulticastTree, SOURCE
from repro.multicast.build import (
    build_binomial_tree,
    build_nonblocking_tree,
    build_sequential_tree,
)
from repro.multicast.capability import (
    capability_series,
    completion_time_units,
    receive_time_units,
    time_units_to_reach,
)
from repro.multicast.switching import (
    ControlMessage,
    RewireOp,
    SwitchPlan,
    apply_plan,
    plan_reattach,
    plan_repair,
    plan_switch,
)
from repro.multicast.analysis import (
    SwitchBenefit,
    affordable_rate_ratio_vs_binomial,
    loss_free_switch_bound,
    max_queue_after_switch,
    scale_down_trigger_length,
    scale_up_breakeven_tuples,
    scale_up_is_worthwhile,
    switch_is_loss_free,
)

__all__ = [
    "ControlMessage",
    "MD1Model",
    "SwitchBenefit",
    "affordable_rate_ratio_vs_binomial",
    "loss_free_switch_bound",
    "max_queue_after_switch",
    "scale_down_trigger_length",
    "scale_up_breakeven_tuples",
    "scale_up_is_worthwhile",
    "switch_is_loss_free",
    "MulticastTree",
    "RewireOp",
    "SOURCE",
    "SwitchPlan",
    "apply_plan",
    "avg_queue_length",
    "binomial_out_degree",
    "build_binomial_tree",
    "build_nonblocking_tree",
    "build_sequential_tree",
    "capability_series",
    "completion_time_units",
    "max_affordable_input_rate",
    "max_out_degree",
    "max_out_degree_paper_eq3",
    "nonblocking_source_degree",
    "plan_reattach",
    "plan_repair",
    "plan_switch",
    "processing_rate",
    "processing_rate_worker_oriented",
    "receive_time_units",
    "time_units_to_reach",
]
