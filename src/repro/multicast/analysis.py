"""Analytical properties of the self-adjusting mechanism (Theorems 3-5).

These are the paper's correctness/benefit conditions for dynamic
switching, implemented as checkable predicates so both the controller
and the test suite can evaluate them against concrete runs.
"""

from __future__ import annotations

from dataclasses import dataclass


def _require_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


# ----------------------------------------------------------------------
# Theorem 3 — the negative scale-down trigger fires no later than the
# baseline dynamic switch (which waits for the waterline itself), so its
# maximum queue length is no larger.
# ----------------------------------------------------------------------
def scale_down_trigger_length(
    waterline: float, growth_per_interval: float, t_down: float
) -> float:
    """The queue length ``q*`` at which the negative scale-down rule
    ``dL / (l_w - q) >= T_down`` first fires, given steady growth ``dL``
    per monitoring interval.  Always ``<= waterline`` (Theorem 3's core:
    the preemptive rule reacts at or before the baseline switch)."""
    _require_positive(
        waterline=waterline,
        growth_per_interval=growth_per_interval,
        t_down=t_down,
    )
    # dL / (l_w - q) >= T_down  <=>  q >= l_w - dL / T_down.
    return max(0.0, waterline - growth_per_interval / t_down)


def max_queue_after_switch(
    trigger_length: float,
    inflow_rate: float,
    outflow_rate: float,
    switch_delay_s: float,
) -> float:
    """Maximum queue length reached when switching begins at
    ``trigger_length`` and the structure needs ``switch_delay_s`` to
    react (Eq. 12/17 with piecewise-constant rates)."""
    if inflow_rate < 0 or outflow_rate < 0:
        raise ValueError("rates must be non-negative")
    if switch_delay_s < 0:
        raise ValueError("switch delay must be non-negative")
    return trigger_length + max(0.0, inflow_rate - outflow_rate) * switch_delay_s


# ----------------------------------------------------------------------
# Theorem 4 — loss-freedom bound for negative scale-down
# ----------------------------------------------------------------------
def loss_free_switch_bound(
    q_capacity: float, queue_length: float, input_rate: float
) -> float:
    """The maximum switching delay that avoids stream input loss:
    ``T_switch < (Q - q(t*)) / v_in(t*)`` (Theorem 4).

    During the switch the output rate is zero, so the queue absorbs the
    whole input; it overflows after the returned number of seconds.
    """
    _require_positive(q_capacity=q_capacity, input_rate=input_rate)
    if queue_length < 0 or queue_length > q_capacity:
        raise ValueError(
            f"queue length {queue_length} outside [0, {q_capacity}]"
        )
    return (q_capacity - queue_length) / input_rate


def switch_is_loss_free(
    q_capacity: float,
    queue_length: float,
    input_rate: float,
    switch_delay_s: float,
) -> bool:
    """Theorem 4's condition, as a predicate."""
    return switch_delay_s < loss_free_switch_bound(
        q_capacity, queue_length, input_rate
    )


# ----------------------------------------------------------------------
# Theorem 5 — when active scale-up pays off
# ----------------------------------------------------------------------
def scale_up_breakeven_tuples(
    new_rate: float, old_rate: float, switch_delay_s: float
) -> float:
    """Minimum number of multicast tuples ``X`` for which scaling up is
    worthwhile: ``X > gamma * gamma' * T_switch / (gamma - gamma')``
    (Theorem 5).  Below this, the switching delay outweighs the faster
    multicast rate."""
    _require_positive(
        new_rate=new_rate, old_rate=old_rate, switch_delay_s=switch_delay_s
    )
    if new_rate <= old_rate:
        raise ValueError(
            f"scale-up must increase the multicast rate "
            f"(old={old_rate}, new={new_rate})"
        )
    return new_rate * old_rate * switch_delay_s / (new_rate - old_rate)


def scale_up_is_worthwhile(
    n_tuples: float, new_rate: float, old_rate: float, switch_delay_s: float
) -> bool:
    """Theorem 5's condition, as a predicate."""
    return n_tuples > scale_up_breakeven_tuples(
        new_rate, old_rate, switch_delay_s
    )


# ----------------------------------------------------------------------
# Section 3.2.2 — structure comparison ratio
# ----------------------------------------------------------------------
def affordable_rate_ratio_vs_binomial(n_destinations: int, d0: int) -> float:
    """``M_nonblock / M_binomial = ceil(log2(n+1)) / d0`` — how much more
    input the capped tree affords than the binomial tree (>= 1 whenever
    ``d0`` is at most the binomial degree)."""
    from repro.multicast.model import binomial_out_degree

    if d0 < 1:
        raise ValueError(f"d0 must be >= 1, got {d0}")
    return binomial_out_degree(n_destinations) / d0


@dataclass(frozen=True)
class SwitchBenefit:
    """A fully-evaluated Theorem 4 + 5 assessment of one planned switch."""

    loss_free: bool
    loss_free_margin_s: float
    breakeven_tuples: float

    @staticmethod
    def assess(
        q_capacity: float,
        queue_length: float,
        input_rate: float,
        switch_delay_s: float,
        new_rate: float,
        old_rate: float,
    ) -> "SwitchBenefit":
        bound = loss_free_switch_bound(q_capacity, queue_length, input_rate)
        breakeven = (
            scale_up_breakeven_tuples(new_rate, old_rate, switch_delay_s)
            if new_rate > old_rate
            else 0.0
        )
        return SwitchBenefit(
            loss_free=switch_delay_s < bound,
            loss_free_margin_s=bound - switch_delay_s,
            breakeven_tuples=breakeven,
        )
