"""The M/D/1 queueing model of the source's transfer queue (Section 3.2.1).

The source instance with out-degree ``d0`` spends ``d0 * te`` CPU-seconds
per tuple (one replica per directly-cascading instance), so its service
rate is ``mu = 1 / (d0 * te)`` (Eq. 1).  Poisson arrivals at rate
``lambda`` against deterministic service give the M/D/1 mean queue length

    ``E(L) = lambda^2 / (2 mu (mu - lambda)) + lambda / mu``      (Eq. 2)

Whale keeps ``E(L) <= Q`` by capping the out-degree at ``d*``.

.. note:: **Paper erratum.**  Solving ``E(L) <= Q`` for the utilisation
   ``rho = lambda * d0 * te`` gives ``rho <= Q + 1 - sqrt(Q^2 + 1)`` and
   hence ``d0 <= (Q + 1 - sqrt(Q^2+1)) / (lambda * te)``.  The paper's
   Eq. (3) instead prints ``d0 <= 2Q / (lambda * te * (Q+1-sqrt(Q^2+1)))``,
   which — because ``(Q+1-sqrt(Q^2+1)) * (Q+1+sqrt(Q^2+1)) = 2Q`` — equals
   the *larger* root ``(Q+1+sqrt(Q^2+1)) / (lambda*te)`` and is
   inconsistent with the paper's own Eq. (4)/(5) (which use the smaller
   root).  We implement the consistent form as :func:`max_out_degree` and
   keep the literal Eq. (3) available as :func:`max_out_degree_paper_eq3`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _validate_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def queue_headroom_factor(q_capacity: float) -> float:
    """``Q + 1 - sqrt(Q^2 + 1)`` — the maximum stable utilisation rho
    that keeps ``E(L) <= Q``.  Always in (0, 1)."""
    _validate_positive(q_capacity=q_capacity)
    return q_capacity + 1.0 - math.sqrt(q_capacity**2 + 1.0)


def processing_rate(d0: int, te: float) -> float:
    """Eq. (1): ``mu = 1 / (d0 * te)`` — tuples/s the source can emit."""
    _validate_positive(d0=d0, te=te)
    return 1.0 / (d0 * te)


def processing_rate_worker_oriented(d0: int, td: float, ts: float) -> float:
    """Section 4 refinement for worker-oriented communication:
    ``mu = 1 / (d0 * td + ts)`` — the data item is serialized once
    (``ts``) and scheduled ``d0`` times (``td`` per replica)."""
    _validate_positive(d0=d0, td=td, ts=ts)
    return 1.0 / (d0 * td + ts)


def avg_queue_length(arrival_rate: float, service_rate: float) -> float:
    """Eq. (2): M/D/1 mean number in system.

    Diverges as ``arrival_rate -> service_rate``; raises if unstable.
    """
    _validate_positive(arrival_rate=arrival_rate, service_rate=service_rate)
    if arrival_rate >= service_rate:
        raise ValueError(
            f"unstable queue: arrival rate {arrival_rate} >= service rate "
            f"{service_rate}"
        )
    lam, mu = arrival_rate, service_rate
    return lam**2 / (2.0 * mu * (mu - lam)) + lam / mu


def max_out_degree(arrival_rate: float, te: float, q_capacity: float) -> int:
    """The maximum out-degree ``d*`` keeping ``E(L) <= Q`` (consistent
    derivation; see module erratum note).  At least 1."""
    _validate_positive(arrival_rate=arrival_rate, te=te)
    rho_max = queue_headroom_factor(q_capacity)
    d = math.floor(rho_max / (arrival_rate * te))
    return max(1, d)


def max_out_degree_paper_eq3(
    arrival_rate: float, te: float, q_capacity: float
) -> int:
    """The paper's Eq. (3) taken literally (the larger, inconsistent root).

    Provided for comparison; everything else in the reproduction uses
    :func:`max_out_degree`.
    """
    _validate_positive(arrival_rate=arrival_rate, te=te)
    factor = queue_headroom_factor(q_capacity)
    d = math.floor(2.0 * q_capacity / (arrival_rate * te * factor))
    return max(1, d)


def max_affordable_input_rate(d0: int, te: float, q_capacity: float) -> float:
    """Eq. (5): ``M = (Q + 1 - sqrt(Q^2+1)) / (d0 * te)``.

    Theorem 1: ``M`` is inversely proportional to ``d0``.
    """
    _validate_positive(d0=d0, te=te)
    return queue_headroom_factor(q_capacity) / (d0 * te)


def binomial_out_degree(n_destinations: int) -> int:
    """Source out-degree of a classic binomial multicast tree over ``n``
    destinations: ``ceil(log2(n + 1))``."""
    if n_destinations < 1:
        raise ValueError(f"need at least one destination, got {n_destinations}")
    return math.ceil(math.log2(n_destinations + 1))


def nonblocking_source_degree(n_destinations: int, d_star: int) -> int:
    """Source out-degree of Whale's non-blocking tree:
    ``min(d*, ceil(log2(n+1)))`` (Section 3.2.2)."""
    if d_star < 1:
        raise ValueError(f"d* must be >= 1, got {d_star}")
    return min(d_star, binomial_out_degree(n_destinations))


@dataclass(frozen=True)
class MD1Model:
    """Convenience bundle: one queue configuration, all derived figures."""

    te: float
    q_capacity: float

    def mu(self, d0: int) -> float:
        return processing_rate(d0, self.te)

    def expected_queue_length(self, arrival_rate: float, d0: int) -> float:
        return avg_queue_length(arrival_rate, self.mu(d0))

    def d_star(self, arrival_rate: float) -> int:
        return max_out_degree(arrival_rate, self.te, self.q_capacity)

    def max_input_rate(self, d0: int) -> float:
        return max_affordable_input_rate(d0, self.te, self.q_capacity)

    def is_stable(self, arrival_rate: float, d0: int) -> bool:
        """True when ``E(L)`` stays within the transfer-queue capacity."""
        mu = self.mu(d0)
        if arrival_rate >= mu:
            return False
        return self.expected_queue_length(arrival_rate, d0) <= self.q_capacity
