"""The multicast structures as pure algorithms — no simulation required.

Builds the sequential, binomial (RDMC), and non-blocking (Whale,
Algorithm 1) trees over the same destinations; prints their relay
schedules, the L(t) capability series (Eq. 6/7), the M/D/1-derived d*
(Eq. 1-5), and a dynamic-switching walkthrough (Fig. 8).

Run:  python examples/multicast_trees.py
"""

from repro.multicast import (
    MD1Model,
    SOURCE,
    build_binomial_tree,
    build_nonblocking_tree,
    build_sequential_tree,
    capability_series,
    completion_time_units,
    max_affordable_input_rate,
    plan_switch,
)

N = 30  # destination instances (one per worker on the paper's cluster)
D_STAR = 3


def show_tree(name, tree):
    print(f"{name:12s} source degree={tree.out_degree(SOURCE):2d}  "
          f"depth={tree.depth():2d}  "
          f"completes in {completion_time_units(tree):2d} time units")


def main():
    dests = [f"T{i}" for i in range(1, N + 1)]

    print(f"-- structures over {N} destinations --")
    seq = build_sequential_tree(dests)
    bino = build_binomial_tree(dests)
    nonb = build_nonblocking_tree(dests, d_star=D_STAR)
    show_tree("sequential", seq)
    show_tree("binomial", bino)
    show_tree(f"nonblocking", nonb)

    print(f"\n-- multicast capability L(t), Eq. (6)/(7) --")
    for d in (1, 2, 3, 5):
        series = capability_series(d, N, t_max=10)
        print(f"d*={d}:  {series}")

    print("\n-- the M/D/1 model, Eq. (1)-(5) --")
    te = 10e-6  # per-replica processing time
    model = MD1Model(te=te, q_capacity=512)
    for rate in (5_000, 20_000, 50_000, 90_000):
        d = model.d_star(rate)
        print(f"input rate {rate:7,d}/s -> d* = {d:2d}   "
              f"(M at this degree: "
              f"{max_affordable_input_rate(d, te, 512):8,.0f}/s)")

    print("\n-- dynamic switching (Fig. 8) --")
    tree = build_nonblocking_tree(dests, d_star=3)
    print(f"start: d*=3, source degree {tree.out_degree(SOURCE)}, "
          f"depth {tree.depth()}")
    down, plan = plan_switch(tree, new_d_star=2)
    print(f"negative scale-down to d*=2: {plan.n_ops} rewire ops, "
          f"new depth {down.depth()}")
    for op in plan.ops[:4]:
        print(f"   move {op.node} from {op.old_parent} to {op.new_parent}")
    up, plan_up = plan_switch(down, new_d_star=5)
    print(f"active scale-up to d*=5: {plan_up.n_ops} rewire ops, "
          f"new depth {up.depth()}")


if __name__ == "__main__":
    main()
