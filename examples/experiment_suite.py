"""Drive the repro.exp orchestrator programmatically.

The CLI (``python -m repro.exp run``) wraps exactly these pieces: a
declarative :class:`ExperimentSpec` decomposes a sweep into explicitly
seeded points, the scheduler computes whichever points the
content-addressed store is missing, and the assembled figure tables are
re-built from the stored records.  This example registers a tiny custom
experiment, runs it twice into a throwaway store (the second pass is all
cache hits), and then checks the paper's claims against whatever the
default store currently holds.

Run:  PYTHONPATH=src python examples/experiment_suite.py
"""

import tempfile

from repro.bench.report import Table
from repro.exp import (
    ExperimentSpec,
    ResultStore,
    assemble,
    build_tasks,
    evaluate_claims,
    run_points,
)


def tiny_sweep(parallelisms=None, seed=0):
    """A stand-in figure function: one row per sweep value.

    Like the real ones it re-seeds per value, which is what lets the
    orchestrator run each value as an independent point.
    """
    import numpy as np

    table = Table("Tiny sweep", ["parallelism", "metric"])
    for p in parallelisms or [8, 16]:
        rng = np.random.default_rng((seed, p))
        table.add(p, float(p * 10 + rng.integers(0, 5)))
    return table


SPEC = ExperimentSpec(
    name="tiny",
    fn_ref="__main__:tiny_sweep",
    sweep_param="parallelisms",
    sweep_values=(8, 16, 32),
    seed=1,
    timeout_s=30.0,
)


def main():
    with tempfile.TemporaryDirectory() as scratch:
        store = ResultStore(scratch)
        tasks = build_tasks([SPEC], version="example")

        print(f"-- {len(tasks)} points, first pass (computes everything)")
        for outcome in run_points(tasks, store, jobs=1):
            print(f"   {outcome.point.label}: {outcome.status}")

        print("-- second pass (answered from the store)")
        for outcome in run_points(tasks, store, jobs=1):
            print(f"   {outcome.point.label}: {outcome.status}")

        records = [store.get(p.digest) for _, p in tasks]
        (table,) = assemble(SPEC, [r["result"] for r in records])
        print()
        print(table.render())

    print()
    print("-- paper claims vs the default store (SKIP until you run")
    print("--   python -m repro.exp run --smoke --jobs 2)")
    for result in evaluate_claims(ResultStore()):
        print(f"   {result.status} {result.claim.name}")


if __name__ == "__main__":
    main()
