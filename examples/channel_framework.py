"""The general channel-oriented communication framework (the paper's
WhaleRDMAChannel artifact) used standalone — no Storm, no topology.

Two services on different machines open logical channels over one RDMA
transport, exchange request/response traffic, and tear channels down —
the exact primitive Whale's multicast controller uses to rewire the
non-blocking tree at runtime.

Run:  python examples/channel_framework.py
"""

from repro.net import (
    ChannelManager,
    Cluster,
    CostModel,
    CpuAccount,
    Fabric,
    RdmaTransport,
)
from repro.net.rdma import Verb
from repro.sim import Simulator

N_REQUESTS = 5


def main():
    sim = Simulator()
    costs = CostModel()
    cluster = Cluster(2, 1, 16)
    fabric = Fabric(
        sim,
        cluster,
        costs.infiniband_bandwidth_bps,
        costs.infiniband_latency_s,
        name="infiniband",
    )
    transport = RdmaTransport(sim, fabric, costs, data_verb=Verb.READ)

    client_mgr = ChannelManager(sim, transport, machine_id=0)
    server_mgr = ChannelManager(sim, transport, machine_id=1)
    server_cpu = CpuAccount(sim, "server")

    # Server: echo every request back with a computed answer.
    def serve(channel):
        def handler(request):
            def respond(sim):
                answer = {"id": request["id"], "square": request["x"] ** 2}
                yield from channel.send(answer, 64, server_cpu)

            sim.process(respond(sim))

        channel.on_receive(handler)
        print(f"[server] accepted {channel}")

    server_mgr.on_accept(serve)

    # Client: connect, fire requests, print responses, close.
    responses = []
    client_cpu = CpuAccount(sim, "client")

    def client(sim):
        channel = yield from client_mgr.connect(1, client_cpu)
        print(f"[client] connected: {channel}")
        channel.on_receive(
            lambda msg: responses.append((sim.now, msg))
        )
        for i in range(N_REQUESTS):
            yield from channel.send({"id": i, "x": i + 2}, 64, client_cpu)
            yield sim.timeout(10e-6)
        yield sim.timeout(1e-3)  # drain
        yield from channel.close(client_cpu)
        print(f"[client] closed; stats: sent={channel.stats.messages_sent} "
              f"msgs / {channel.stats.bytes_sent} B, "
              f"received={channel.stats.messages_received}")

    sim.process(client(sim))
    sim.run()

    print(f"\n{len(responses)} responses over one logical channel:")
    for t, msg in responses:
        print(f"  t={1e6 * t:8.2f} us  id={msg['id']}  square={msg['square']}")
    print(f"\nopen channels after close: client={client_mgr.open_channels}, "
          f"server={server_mgr.open_channels}")
    print(f"wire traffic: {fabric.total_bytes_sent} bytes "
          f"({fabric.messages_delivered} messages incl. handshakes)")


if __name__ == "__main__":
    main()
