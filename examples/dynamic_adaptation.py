"""Watch Whale's queue-based self-adjusting mechanism react to a bursty
stream (the Fig. 23/24 scenario at example scale).

The input rate steps up past the source's capacity at the current
maximum out-degree d*; the multicast controller detects the rising
transfer-queue waterline (negative scale-down, Section 3.3), rewires the
non-blocking tree (Section 3.4), and throughput recovers.  When the
burst subsides, active scale-up widens the tree again.

Run:  python examples/dynamic_adaptation.py
"""

import numpy as np

from repro.core import create_system, whale_full_config
from repro.dsps import AllGrouping, Bolt, Spout, Topology
from repro.net import Cluster, CostModel
from repro.workloads import DynamicRateArrivals, RateStep

PARALLELISM = 32
MACHINES = 8
STEPS = [
    RateStep(0.0, 2_000.0),
    RateStep(1.0, 9_000.0),  # burst: overloads the tree at d* = 4
    RateStep(3.0, 2_000.0),  # burst ends
]
TOTAL_S = 5.0


class EventSpout(Spout):
    payload_bytes = 150

    def next_tuple(self):
        return {}, None, 150


class Watcher(Bolt):
    base_service_s = 10e-6


def main():
    topo = Topology("bursty")
    topo.add_spout("events", EventSpout)
    topo.add_bolt(
        "watchers",
        Watcher,
        parallelism=PARALLELISM,
        inputs={"events": AllGrouping()},
        terminal=True,
    )
    # Slow serialization puts the broadcast source on the critical path,
    # as in the paper's testbed.
    costs = CostModel().with_overrides(serialize_per_byte_s=280e-9)
    config = whale_full_config(d_star=4, costs=costs).with_overrides(
        monitor_interval_s=0.05
    )
    rng = np.random.default_rng(3)
    system = create_system(
        topo,
        config,
        cluster=Cluster(MACHINES, 1, 16),
        arrivals={"events": DynamicRateArrivals(STEPS, rng)},
    )
    controller = system.controllers[0]
    source = system.source_executor("events")

    print("t(s)    input   d*   queue  switches")
    system.start()
    system.metrics.open_window()
    rate_fn = DynamicRateArrivals(STEPS, np.random.default_rng(0)).rate_at
    t = 0.0
    while t < TOTAL_S:
        t += 0.25
        system.sim.run(until=t)
        print(f"{t:5.2f}  {rate_fn(t - 1e-9):7.0f}  {controller.d_star:3d}  "
              f"{source.transfer_queue.level:5d}  {len(controller.history):4d}")
    system.metrics.close_window()

    print("\nswitch history:")
    for rec in controller.history:
        print(f"  t={rec.time:6.3f}s  {rec.direction:11s}  d* {rec.old_d_star} "
              f"-> {rec.new_d_star}  ({rec.n_ops} rewire ops, "
              f"{1e3 * rec.duration_s:.1f} ms)")
    stats = source.transfer_queue.stats()
    print(f"\ntransfer queue: max length {stats.max_length} / capacity "
          f"{config.transfer_queue_capacity}, drops {stats.dropped}")
    print(f"tuples fully delivered: {system.metrics.completion.completed}")


if __name__ == "__main__":
    main()
