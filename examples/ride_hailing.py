"""On-demand ride-hailing (the paper's Fig. 4 application), end to end.

Driver locations stream in key-grouped; passenger requests are broadcast
(all-grouping) to every matching instance, which joins them against its
local drivers; an aggregation operator keeps the best candidate per
request.  This example runs the *real* matching logic (nearest-driver
search over stored positions) on full Whale and prints both performance
metrics and actual matching results.

Run:  python examples/ride_hailing.py
"""

import numpy as np

from repro.apps import ride_hailing_topology
from repro.core import create_system, whale_full_config
from repro.net import Cluster
from repro.workloads import PoissonArrivals

PARALLELISM = 16
MACHINES = 4
N_DRIVERS = 2_000
DRIVER_RATE = 4_000.0  # location updates/s
REQUEST_RATE = 400.0  # passenger requests/s (broadcast stream)


def main():
    topology = ride_hailing_topology(
        parallelism=PARALLELISM,
        n_drivers=N_DRIVERS,
        compute_real_matches=True,  # actually search for nearest drivers
        aggregate_parallelism=2,
    )
    rng = np.random.default_rng(7)
    system = create_system(
        topology,
        whale_full_config(),
        cluster=Cluster(MACHINES, 1, 16),
        arrivals={
            "driver_locations": PoissonArrivals(DRIVER_RATE, rng),
            "requests": PoissonArrivals(REQUEST_RATE, rng),
        },
    )
    metrics = system.run_measured(warmup_s=0.5, measure_s=2.0)

    print(f"{N_DRIVERS} drivers, {REQUEST_RATE:.0f} requests/s broadcast to "
          f"{PARALLELISM} matching instances on {MACHINES} machines\n")
    print(f"requests fully matched : {metrics.completion.completed}")
    print(f"processing latency p50 : "
          f"{1e3 * metrics.completion.summary().p50:.2f} ms")
    print(f"multicast latency p50  : "
          f"{1e3 * metrics.multicast.summary().p50:.2f} ms")

    # Peek inside the real application state.
    matching = system.operator_executors("matching")
    stored = sum(len(ex.bolt.drivers) for ex in matching)
    print(f"\ndriver positions stored across instances: {stored}")
    per_instance = sorted(len(ex.bolt.drivers) for ex in matching)
    print(f"per-instance partition sizes (key grouping): "
          f"min={per_instance[0]} max={per_instance[-1]}")

    aggregate = system.operator_executors("aggregate")
    best = {}
    for ex in aggregate:
        best.update(ex.bolt.best)
    print(f"\nrequests with a matched driver: {len(best)}")
    for request_id in sorted(best)[:5]:
        match = best[request_id]
        print(f"  request {request_id}: driver {match['driver_id']} at "
              f"distance {match['distance']:.4f}")

    if system.controllers:
        d = system.controllers[0].d_star
        print(f"\nnon-blocking multicast tree: current d* = {d}, "
              f"switches = {len(system.controllers[0].history)}")


if __name__ == "__main__":
    main()
