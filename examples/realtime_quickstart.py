"""Realtime quickstart: run one Topology on BOTH execution backends.

The same ``repro.dsps.Topology`` object drives two very different
engines:

* the discrete-event simulator (``backend="sim"``) — simulated clocks,
  modeled CPU and network costs, perfectly reproducible;
* the asyncio runtime (``backend="asyncio"``) — real wall-clock pacing,
  real localhost TCP sockets between per-machine worker hosts, Whale's
  relay-tree multicast, receiver-driven credit flow control, and an
  at-least-once acker.

Here a sensor spout broadcasts to every instance of an alert bolt (the
paper's one-to-many pattern).  The terminal bolt counts what it saw into
a plain in-process tally, so after both runs we can check that the two
backends delivered exactly the same work: ``budget x parallelism``
executions each.

Run:  python examples/realtime_quickstart.py
      python -m repro.rt run --topology word_count --duration 5
      python -m repro.rt diff --smoke
"""

from collections import Counter

from repro.dsps import AllGrouping, Bolt, Spout, SystemConfig, Topology
from repro.rt import create_runtime, default_cluster

PARALLELISM = 8  # alert instances receiving every tuple
RATE = 200.0  # offered rate, tuples/s
BUDGET = 100  # tuples emitted per run


class SensorSpout(Spout):
    """A source emitting fixed-size telemetry tuples."""

    payload_bytes = 150

    def __init__(self):
        self.sequence = 0

    def next_tuple(self):
        self.sequence += 1
        return {"seq": self.sequence}, None, self.payload_bytes


class AlertBolt(Bolt):
    """Every instance watches every tuple and tallies what it saw."""

    base_service_s = 5e-6  # only the simulator charges this

    def __init__(self, tally: Counter):
        self.tally = tally

    def execute(self, tup, collector):
        self.tally[tup.values["seq"]] += 1


def build_topology(tally: Counter) -> Topology:
    topo = Topology("realtime-quickstart")
    topo.add_spout("sensors", SensorSpout)
    topo.add_bolt(
        "alerts",
        lambda: AlertBolt(tally),
        parallelism=PARALLELISM,
        inputs={"sensors": AllGrouping()},  # broadcast: one-to-many
        terminal=True,
    )
    return topo


def run_on(backend: str) -> Counter:
    tally: Counter = Counter()
    config = SystemConfig(
        name="realtime-quickstart",
        backend=backend,
        delivery="at_least_once",  # exercise the acker on both engines
        flow=True,  # receiver-driven credits
        credit_window=16,
    )
    runtime = create_runtime(
        build_topology(tally), config, cluster=default_cluster(), seed=7
    )
    report = runtime.run(RATE, budget=BUDGET)
    executions = sum(report.processed.values())
    print(f"[{backend}]")
    print(f"  emitted     {sum(report.emitted.values()):6d} tuples")
    print(f"  executions  {executions:6d} "
          f"(= {BUDGET} tuples x {PARALLELISM} instances)")
    print(f"  window      {report.window_s:6.2f} s")
    if report.credit_stall_s:
        print(f"  stall       {report.credit_stall_s:6.3f} s in credits")
    print()
    return tally


def main():
    print(f"broadcasting {BUDGET} tuples at {RATE:.0f}/s "
          f"to {PARALLELISM} alert instances, twice:\n")
    sim = run_on("sim")
    real = run_on("asyncio")
    if sim == real:
        print("both backends delivered the identical tuple multiset — "
              "the simulator predicts the real runtime here.")
    else:
        missing = sum((sim - real).values()) + sum((real - sim).values())
        print(f"backends disagree on {missing} deliveries — "
              "that would be a bug worth a differential look:")
        print("  python -m repro.rt diff")


if __name__ == "__main__":
    main()
