"""Stock exchange application: order matching + real-time trading volume.

Orders stream in, a split operator validates them, every matching
instance receives every order (the one-to-many edge) and crosses the
books for the symbols it owns; a volume operator aggregates executed
trades.  Runs the real order-book logic on Whale and prints both system
metrics and actual trading results.

Run:  python examples/stock_exchange.py
"""

import numpy as np

from repro.apps import stock_exchange_topology
from repro.core import create_system, whale_full_config
from repro.net import Cluster
from repro.workloads import PoissonArrivals

PARALLELISM = 16
MACHINES = 4
N_SYMBOLS = 500
ORDER_RATE = 2_000.0


def main():
    topology = stock_exchange_topology(
        parallelism=PARALLELISM,
        n_symbols=N_SYMBOLS,
        volume_parallelism=2,
    )
    rng = np.random.default_rng(13)
    system = create_system(
        topology,
        whale_full_config(),
        cluster=Cluster(MACHINES, 1, 16),
        arrivals={"orders": PoissonArrivals(ORDER_RATE, rng)},
    )
    metrics = system.run_measured(warmup_s=0.5, measure_s=2.0)

    print(f"{ORDER_RATE:.0f} orders/s over {N_SYMBOLS} symbols, broadcast "
          f"to {PARALLELISM} matching instances on {MACHINES} machines\n")
    print(f"orders fully processed : {metrics.completion.completed}")
    print(f"processing latency p50 : "
          f"{1e3 * metrics.completion.summary().p50:.2f} ms")
    print(f"multicast latency p50  : "
          f"{1e3 * metrics.multicast.summary().p50:.2f} ms")

    split = system.operator_executors("split")[0]
    print(f"orders filtered (rule violations): {split.bolt.filtered}")

    matching = system.operator_executors("matching")
    trades = sum(ex.bolt.trades for ex in matching)
    open_orders = sum(ex.bolt.book_entries() for ex in matching)
    print(f"\ntrades executed: {trades}")
    print(f"orders resting in the books: {open_orders}")

    volume = system.operator_executors("volume")
    total = sum(ex.bolt.total_volume for ex in volume)
    per_symbol = {}
    for ex in volume:
        for symbol, notional in ex.bolt.volume.items():
            per_symbol[symbol] = per_symbol.get(symbol, 0.0) + notional
    print(f"\nreal-time trading volume: ${total:,.0f}")
    top = sorted(per_symbol.items(), key=lambda kv: -kv[1])[:5]
    print("most-traded symbols (Zipf-skewed popularity):")
    for symbol, notional in top:
        print(f"  symbol {symbol:5d}: ${notional:,.0f}")


if __name__ == "__main__":
    main()
