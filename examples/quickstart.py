"""Quickstart: build a topology with a one-to-many edge, run it on Whale,
and compare against Apache Storm's instance-oriented communication.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace /tmp/quickstart.jsonl
"""

import argparse

import numpy as np

from repro.core import create_system, whale_full_config
from repro.dsps import AllGrouping, Bolt, Spout, Topology, storm_config
from repro.net import Cluster
from repro.workloads import PoissonArrivals

PARALLELISM = 64  # destination instances of the broadcast
MACHINES = 8  # simulated 16-core machines
RATE = 4_000.0  # offered broadcast rate, tuples/s


class SensorSpout(Spout):
    """A source emitting fixed-size telemetry tuples."""

    payload_bytes = 150

    def __init__(self):
        self.sequence = 0

    def next_tuple(self):
        self.sequence += 1
        return {"seq": self.sequence}, None, self.payload_bytes


class AlertBolt(Bolt):
    """Every instance watches every tuple (the one-to-many pattern)."""

    base_service_s = 5e-6  # simulated per-tuple CPU

    def __init__(self):
        self.seen = 0

    def execute(self, tup, collector):
        self.seen += 1


def build_topology() -> Topology:
    topo = Topology("quickstart")
    topo.add_spout("sensors", SensorSpout)
    topo.add_bolt(
        "alerts",
        AlertBolt,
        parallelism=PARALLELISM,
        inputs={"sensors": AllGrouping()},  # broadcast: the paper's target
        terminal=True,
    )
    return topo


def measure(config, trace_path=None, check=None):
    tracer = None
    if trace_path is not None:
        from repro.trace import JsonlTracer, run_manifest

        tracer = JsonlTracer(
            trace_path,
            manifest=run_manifest(
                config=config, seed=1, app="quickstart",
                parallelism=PARALLELISM, offered_rate=RATE,
            ),
        )
    system = create_system(
        build_topology(),
        config,
        cluster=Cluster(MACHINES, 1, 16),
        arrivals={"sensors": PoissonArrivals(RATE, np.random.default_rng(1))},
        tracer=tracer,
    )
    checker = system.attach_checker(mode=check) if check else None
    try:
        metrics = system.run_measured(warmup_s=0.3, measure_s=1.0)
        report = checker.finalize() if checker is not None else None
    finally:
        if tracer is not None:
            tracer.close()
    source = system.source_executor("sensors")
    return {
        "throughput": metrics.completion.completed / metrics.window_duration,
        "latency_ms": 1e3 * metrics.completion.summary().p50,
        "multicast_ms": 1e3 * metrics.multicast.summary().p50,
        "source_cpu": source.cpu.utilization(),
        "traffic_MB": system.traffic_bytes("data") / 1e6,
        "check": report.summary() if report is not None else None,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a JSONL trace of the Whale run to PATH "
        "(inspect with: python -m repro.trace PATH)",
    )
    parser.add_argument(
        "--check", choices=("strict", "warn"), default=None,
        help="attach the runtime invariant checker to every run "
        "(see TESTING.md for the invariant catalog)",
    )
    args = parser.parse_args()
    print(f"broadcasting {RATE:.0f} tuples/s to {PARALLELISM} instances "
          f"on {MACHINES} machines\n")
    for config in (storm_config(), whale_full_config()):
        trace = args.trace if config.name == "whale" else None
        r = measure(config, trace_path=trace, check=args.check)
        print(f"[{config.name}]")
        print(f"  throughput          {r['throughput']:10.0f} tuples/s")
        print(f"  processing latency  {r['latency_ms']:10.2f} ms (p50)")
        print(f"  multicast latency   {r['multicast_ms']:10.2f} ms (p50)")
        print(f"  source CPU util     {r['source_cpu']:10.2f}")
        print(f"  data traffic        {r['traffic_MB']:10.2f} MB")
        if r["check"]:
            print(f"  {r['check']}")
        print()
    print("Storm serializes and transmits the tuple once per destination")
    print("instance; Whale serializes once per worker and relays through")
    print("its self-adjusting non-blocking multicast tree.")
    if args.trace:
        print(f"\ntrace written to {args.trace}; summarize it with:")
        print(f"  python -m repro.trace {args.trace}")


if __name__ == "__main__":
    main()
