"""Figs. 25/26 — communication time and the serialization share of it.

Note on fidelity: our "communication time" is sender-side CPU only (the
paper's includes transmission wall time), so Whale's small residual CPU
is almost entirely serialization; the paper's "15% share" story is
carried by the *absolute* serialization time per tuple instead.
"""

from _util import run_figure
from repro.bench.experiments import fig25_26_comm_time


def test_fig25_26_comm_time(benchmark):
    comm, share = run_figure(benchmark, fig25_26_comm_time, "fig25_26")
    cols = comm.headers[1:]
    storm = cols.index("storm") + 1
    rdma = cols.index("rdma-storm") + 1
    whale = cols.index("whale-woc-rdma") + 1
    last = comm.rows[-1]  # parallelism 480
    # Paper Fig 25: Whale cuts communication time ~96% vs Storm.
    assert last[whale] < 0.1 * last[storm]
    assert last[whale] < 0.2 * last[rdma]
    # Fig 26 shares: replacing TCP with RDMA leaves serialization as the
    # dominant cost (paper: 45% -> 94%).
    slast = share.rows[-1]
    n = len(cols)
    assert 0.2 < slast[storm] < 0.7
    assert slast[rdma] > slast[storm]
    # Fig 26 absolute: Whale's serialization time per tuple collapses
    # (paper: 49.5 ms -> <1 ms; ours: per-worker batching, ~10x+ less).
    abs_storm = slast[n + storm]
    abs_whale = slast[n + whale]
    assert abs_whale < 0.1 * abs_storm
