"""Table 2 — dataset statistics, paper vs synthetic generators."""

from _util import run_figure
from repro.bench.experiments import table2_datasets


def test_table2_datasets(benchmark):
    (table,) = run_figure(benchmark, table2_datasets, "table2")
    didi, nasdaq = table.rows
    assert didi[1] == 13_000_000_000 and didi[2] == 6_000_000
    assert nasdaq[1] == 274_000_000 and nasdaq[2] == 6_649
    # The NASDAQ generator covers a large share of the real symbol
    # universe in a modest sample (Zipf tail means not all appear).
    assert nasdaq[3] > 1_000
    # The scaled driver population shows matching key-cardinality shape.
    assert didi[3] > 10_000
