"""Ablation — partitioning strategies under a seeded Zipf hot-key storm.

Six runs (one per registry strategy) share the identical seeded arrival
timeline and key sequence; the hottest key alone exceeds one sink task's
service capacity.  Key-split must cut the tail-latency cost of the storm
by an order of magnitude relative to single-owner hashing without
sacrificing goodput, and the fields+rebalance row must actually migrate
routing off the melting task.
"""

from _util import run_figure
from repro.bench.hotkey import ablation_hot_key


def test_ablation_hot_key(benchmark):
    (table,) = run_figure(benchmark, ablation_hot_key, "ablation_hot_key")
    rows = {r[0]: r for r in table.rows}
    good, p99, hwm, migrations = 1, 3, 4, 7
    fields, split = rows["fields"], rows["key_split"]
    rebalance = rows["fields+rebalance"]
    # the hot key's queue is the whole effect: fan-out must flatten it
    assert split[p99] <= 0.5 * fields[p99]
    assert split[hwm] < fields[hwm]
    # ...at no goodput cost
    assert split[good] >= 0.95 * fields[good]
    # the rebalancer must park the melting task and pay off on the tail
    assert rebalance[migrations] > 0
    assert rebalance[p99] < fields[p99]
