"""Robustness ablation — in-flight message loss (not in the paper)."""

from _util import run_figure
from repro.bench.faults import ablation_lossy_network


def test_ablation_lossy_network(benchmark):
    (table,) = run_figure(benchmark, ablation_lossy_network, "ablation_loss")
    rows = table.rows
    # Columns: loss, storm frac, whale frac, storm lost, whale lost.
    # Full delivery degrades as loss grows, for both systems.
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][2] < rows[0][2]
    # Whale loses far fewer wire messages (it sends far fewer)...
    assert rows[-1][4] < rows[-1][3]
    # ...yet its relay tree amplifies each loss: delivery fraction is in
    # the same ballpark as Storm's, not proportionally better.
    assert abs(rows[-1][2] - rows[-1][1]) < 0.15
    # No injected loss, no lost messages.
    assert rows[0][3] == 0 and rows[0][4] == 0
