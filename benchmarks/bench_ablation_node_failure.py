"""Robustness ablation — interior-relay crash and recovery (not in the
paper): failure detection, tree self-healing, and acker-driven replay
turn a mid-run machine crash into a bounded recovery-time hiccup."""

from _util import run_figure
from repro.bench.faults import ablation_node_failure


def test_ablation_node_failure(benchmark):
    (table,) = run_figure(benchmark, ablation_node_failure, "ablation_node_failure")
    baseline, crashed = table.rows
    # Columns: scenario, goodput, recovery s, completed, replays,
    # replayed roots, gave up, repairs, reattaches, msgs dead.
    # The fault-free run needs no repairs and replays nothing.
    assert baseline[4] == 0 and baseline[7] == 0
    # The crash forces replays, one repair and one reattach, and drops
    # messages on the floor while the machine is down.
    assert crashed[4] > 0
    assert crashed[7] >= 1 and crashed[8] >= 1
    assert crashed[9] > 0
    # Nothing is lost for good: no tree exhausts its retry budget, and
    # full delivery is restored within a second of the crash.
    assert crashed[6] == 0
    assert 0.0 < crashed[2] < 1.0
    # Goodput survives the outage (within 5% of the fault-free run).
    assert crashed[1] > 0.95 * baseline[1]
