"""Ablation — transfer-queue capacity Q with the adaptive controller.

Eq. (3): larger Q affords a larger d*; the controller's converged d*
tracks the model, tiny queues lose tuples, huge queues pay latency.
"""

from _util import run_figure
from repro.bench.ablations import ablation_queue_capacity


def test_ablation_queue_capacity(benchmark):
    (table,) = run_figure(benchmark, ablation_queue_capacity, "ablation_queue")
    rows = table.rows
    # Converged d* is non-decreasing in Q and stays within 1 of the model.
    converged = [r[2] for r in rows]
    assert converged == sorted(converged)
    for r in rows:
        assert abs(r[2] - r[1]) <= 1
    # The tiniest queue drops tuples; a moderate queue does not.
    assert rows[0][5] > 0
    assert rows[2][5] == 0
    # A huge queue buys stability at a latency cost vs the moderate one.
    assert rows[3][4] > rows[2][4]
