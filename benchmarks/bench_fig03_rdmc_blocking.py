"""Fig. 3 — RDMC's static binomial tree blocks under rising input rates."""

from _util import run_figure
from repro.bench.experiments import fig03_rdmc_blocking


def test_fig03_rdmc_blocking(benchmark):
    (table,) = run_figure(benchmark, fig03_rdmc_blocking, "fig03")
    rates = [row[0] for row in table.rows]
    thru = [row[1] for row in table.rows]
    load = [row[3] for row in table.rows]
    drops = [row[4] for row in table.rows]
    # Throughput tracks the input at low rates...
    assert thru[0] > 0.8 * rates[0]
    # ...then stops increasing (plateau/decline) at high rates.
    assert thru[-1] < rates[-1] * 0.8
    assert abs(thru[-1] - thru[-2]) < 0.15 * thru[-2]
    # The transfer queue blocks and tuples are lost (Definition 4).
    assert load[-1] > 0.9
    assert drops[-1] > 0
