"""Figs. 15/16 — end-to-end throughput & latency, stock exchange.

Paper: 51.2x over Storm, 16x over RDMA-based Storm, -96.5% latency.
"""

from _util import run_figure
from repro.bench.experiments import fig15_16_stocks


def test_fig15_16_stocks(benchmark):
    thru, lat = run_figure(benchmark, fig15_16_stocks, "fig15_16")
    cols = thru.headers[1:]
    storm = cols.index("storm") + 1
    whale = cols.index("whale") + 1
    by_p = {row[0]: row for row in thru.rows}
    ps = sorted(by_p)
    assert by_p[ps[-1]][storm] < by_p[ps[0]][storm]
    speedup = by_p[480][whale] / by_p[480][storm]
    assert 20 < speedup < 120
    lby_p = {row[0]: row for row in lat.rows}
    assert lby_p[480][whale] < 0.1 * lby_p[480][storm]
