"""Figs. 27/28 — communication traffic per 10,000 generated tuples."""

from _util import run_figure
from repro.bench.experiments import fig27_28_traffic


def test_fig27_28_traffic(benchmark):
    ride, stocks = run_figure(benchmark, fig27_28_traffic, "fig27_28")
    for table in (ride, stocks):
        cols = table.headers[1:]
        storm = cols.index("storm") + 1
        rdma = cols.index("rdma-storm") + 1
        whale = cols.index("whale") + 1
        first, last = table.rows[0], table.rows[-1]
        # Paper: ~90% traffic reduction at parallelism 480.
        assert last[whale] < 0.15 * last[storm]
        # Instance-oriented baselines grow ~linearly with parallelism
        # (RDMA-based Storm keeps Storm's pattern: near-identical traffic).
        assert last[storm] > 2.5 * first[storm]
        assert abs(last[rdma] - last[storm]) < 0.1 * last[storm]
        # Whale's traffic only grows by the 4-byte ids.
        assert last[whale] < 1.6 * first[whale]
