"""Figs. 17/18/21 — multicast structure comparison (ride-hailing).

Sequential (Storm) vs binomial (RDMC) vs Whale's non-blocking tree, all
implemented on top of Whale-WOC-RDMA as in the paper.
"""

from _util import run_figure
from repro.bench.experiments import fig17_18_21_structures_ridehailing


def test_fig17_18_21_structures_ridehailing(benchmark):
    thru, lat, mcast = run_figure(
        benchmark, fig17_18_21_structures_ridehailing, "fig17_18_21"
    )
    cols = thru.headers[1:]
    seq = cols.index("sequential") + 1
    bino = cols.index("binomial") + 1
    nb = cols.index("nonblocking") + 1
    last = thru.rows[-1]  # parallelism 480
    # Paper Fig 17: nonblocking 1.2x binomial, 1.4x sequential.
    assert last[nb] > 1.05 * last[bino]
    assert last[nb] > 1.3 * last[seq]
    # Paper Fig 21: nonblocking has the lowest average multicast latency.
    mlast = mcast.rows[-1]
    assert mlast[nb] < mlast[bino] < mlast[seq]
    # Paper: ~54% below binomial at 480 — ours is at least 30% below.
    assert mlast[nb] < 0.7 * mlast[bino]
