"""Robustness ablation — rack sweep with an oversubscribed core
(explains why the paper's Figs. 33/34 are flat)."""

from _util import run_figure
from repro.bench.faults import ablation_oversubscribed_racks


def test_ablation_oversubscribed_racks(benchmark):
    (table,) = run_figure(
        benchmark, ablation_oversubscribed_racks, "ablation_racks"
    )
    n = 3  # systems per metric group
    whale_thru = [row[3] for row in table.rows]
    # Whale stays stable across rack counts even with a 4:1 core.
    assert max(whale_thru) < 1.2 * min(whale_thru)
    # And the explanation holds: every uplink is far below saturation.
    for row in table.rows[1:]:  # racks >= 3 have cross-rack traffic
        for util in row[1 + n:]:
            assert util < 0.5
        assert any(util > 0 for util in row[1 + n:])
