"""Figs. 33/34 — sensitivity to the physical rack topology (1-5 racks)."""

from _util import run_figure
from repro.bench.experiments import fig33_34_racks


def test_fig33_34_racks(benchmark):
    thru, lat = run_figure(benchmark, fig33_34_racks, "fig33_34")
    cols = thru.headers[1:]
    whale = cols.index("whale") + 1
    whale_thru = [row[whale] for row in thru.rows]
    whale_lat = [row[whale] for row in lat.rows]
    # Paper: Whale is stable from 1 to 5 racks.
    assert max(whale_thru) < 1.2 * min(whale_thru)
    assert max(whale_lat) < 1.5 * min(whale_lat)
