"""Ablation — overload protection under a seeded flash crowd + crash.

Six runs (three delivery modes x flow off/on) share the identical fault
schedule: an 8x flash crowd, one slowed machine, and one crash.  With
the flow layer on, credits must keep inqueue high-water marks near the
credit window while the unprotected runs grow them by an order of
magnitude, and the replay budget must cut the replay storm.
"""

from _util import run_figure
from repro.bench.faults import OVERLOAD_CREDIT_WINDOW, ablation_overload


def test_ablation_overload(benchmark):
    (table,) = run_figure(benchmark, ablation_overload, "ablation_overload")
    rows = {(r[0], r[1]): r for r in table.rows}
    hwm, shed, deferred, stall, replays = 4, 6, 7, 8, 9
    for mode in ("at_most_once", "at_least_once", "exactly_once"):
        on, off = rows[(mode, "on")], rows[(mode, "off")]
        # credits bound the backlog; unprotected runs let it grow
        assert on[hwm] <= 4 * OVERLOAD_CREDIT_WINDOW
        assert on[hwm] < off[hwm]
        # protection is visible as pushback, not silent loss
        assert on[shed] + on[deferred] + on[stall] > 0
        if mode != "at_most_once":
            # the replay budget tames the storm the burst would trigger
            assert on[replays] < off[replays]
