"""Figs. 13/14 — end-to-end throughput & latency, on-demand ride-hailing.

The paper's headline: at parallelism 480 Whale achieves 56.6x Storm's
throughput and a 96.6% latency reduction.
"""

from _util import run_figure
from repro.bench.experiments import fig13_14_ridehailing


def test_fig13_14_ridehailing(benchmark):
    thru, lat = run_figure(benchmark, fig13_14_ridehailing, "fig13_14")
    by_p = {row[0]: row for row in thru.rows}
    cols = thru.headers[1:]
    storm = cols.index("storm") + 1
    rdma = cols.index("rdma-storm") + 1
    whale = cols.index("whale") + 1
    # Storm's throughput declines with parallelism; Whale's rises.
    ps = sorted(by_p)
    assert by_p[ps[-1]][storm] < by_p[ps[0]][storm]
    assert by_p[ps[-1]][whale] > by_p[ps[0]][whale]
    # Headline factor: order of the paper's 56.6x (within ~2x).
    speedup = by_p[480][whale] / by_p[480][storm]
    assert 25 < speedup < 120
    # RDMA-based Storm sits in between (paper: Whale is ~15x it).
    assert by_p[480][storm] < by_p[480][rdma] < by_p[480][whale]
    # Latency: Whale cuts Storm's by >90% at 480 (paper: 96.6%).
    lby_p = {row[0]: row for row in lat.rows}
    assert lby_p[480][whale] < 0.1 * lby_p[480][storm]
