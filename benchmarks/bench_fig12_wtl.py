"""Fig. 12 — Wait Time Limit (WTL) sweep of the stream-slicing batcher."""

from _util import run_figure
from repro.bench.experiments import fig12_wtl


def test_fig12_wtl(benchmark):
    (table,) = run_figure(benchmark, fig12_wtl, "fig12")
    wtl = [row[0] for row in table.rows]
    lat = [row[2] for row in table.rows]
    # Paper: latency increases significantly with WTL...
    assert lat[-1] > 5 * lat[0]
    # ...roughly tracking the configured wait limit.
    assert lat[-1] > wtl[-1] * 0.5
