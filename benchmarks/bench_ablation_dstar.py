"""Ablation — fixed maximum out-degree sweep.

Justifies deriving d* from the M/D/1 model: the throughput/stability
knee lands exactly at the model's d*.
"""

from _util import run_figure
from repro.bench.ablations import ablation_dstar


def test_ablation_dstar(benchmark):
    (table,) = run_figure(benchmark, ablation_dstar, "ablation_dstar")
    # Extract the model's d* from the title.
    model_d = int(table.title.rstrip(")").split("d* = ")[1])
    rows = {row[0]: row for row in table.rows}
    # At or below the model's d*: stable (no loss, queue below capacity).
    assert rows[model_d][4] == 0
    assert rows[model_d][3] < 1.0
    # Above it: the transfer queue saturates and tuples are lost.
    above = model_d + 1
    if above in rows:
        assert rows[above][3] >= 0.99
        assert rows[above][4] > 0
        assert rows[above][1] < rows[model_d][1]
