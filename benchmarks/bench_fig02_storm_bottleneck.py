"""Fig. 2 — the motivating experiment: Storm's one-to-many bottleneck.

Regenerates throughput/latency vs parallelism, upstream-vs-downstream CPU
utilization (Fig. 2c), and the upstream CPU-time breakdown (Fig. 2d).
"""

from _util import run_figure
from repro.bench.experiments import fig02_storm_bottleneck


def test_fig02_storm_bottleneck(benchmark):
    (table,) = run_figure(benchmark, fig02_storm_bottleneck, "fig02")
    rows = {row[0]: row for row in table.rows}
    # Paper shape: throughput collapses ~10x from parallelism 30 to 480.
    assert rows[480][1] < rows[30][1] / 5
    # Fig 2c: upstream saturated, downstream idle at high parallelism.
    assert rows[480][3] > 0.95
    assert rows[480][4] < 0.2
    # Fig 2d: serialization + packet processing dominate upstream CPU.
    assert rows[480][5] + rows[480][6] > 0.8
