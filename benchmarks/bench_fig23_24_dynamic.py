"""Figs. 23/24 — highly dynamic streams and dynamic switching.

The input rate steps 3k -> 6k -> 8k -> 10k -> 8k tuples/s (the scaled
analogue of the paper's 30k -> 60k -> 80k -> 100k -> 80k).  Whale's
self-adjusting non-blocking structure must re-derive d* at each step and
switch without losing the stream; the static sequential multicast
saturates.
"""

import math

from _util import run_figure
from repro.bench.experiments import fig23_24_dynamic


def test_fig23_24_dynamic(benchmark):
    whale, sequential = run_figure(benchmark, fig23_24_dynamic, "fig23_24")

    def steady(table, t_lo, t_hi, col):
        vals = [r[col] for r in table.rows if t_lo <= r[0] <= t_hi]
        vals = [v for v in vals if not math.isnan(v)]
        return sum(vals) / len(vals)

    # Whale tracks every step of the input rate (col 2 = throughput).
    assert steady(whale, 0.4, 1.0, 2) > 2_400
    assert steady(whale, 3.5, 4.0, 2) > 8_500  # the 10k step
    # The static sequential multicast saturates far below the input.
    assert steady(sequential, 3.5, 4.0, 2) < 4_000
    # Whale actually switched, both down and up.
    notes = " ".join(whale.notes)
    assert "scale_down" in notes and "scale_up" in notes
    # Whale's latency recovers after each step (end of 10k step is
    # steady, not divergent); sequential's does not.
    assert steady(whale, 3.6, 4.0, 3) < 50
    assert steady(sequential, 4.0, 5.0, 3) > steady(whale, 4.0, 5.0, 3)
