"""Figs. 31/32 — the verb-selection ablation (Whale_DiffVerbs).

Paper: choosing suitable verbs per message class gives Whale 15.6x the
throughput and 96% lower latency than RDMA-based Storm.
"""

from _util import run_figure
from repro.bench.experiments import fig31_32_diffverbs


def test_fig31_32_diffverbs(benchmark):
    thru, lat = run_figure(benchmark, fig31_32_diffverbs, "fig31_32")
    cols = thru.headers[1:]
    rdma_storm = cols.index("rdma-storm") + 1
    diffverbs = cols.index("whale-diffverbs") + 1
    last = thru.rows[-1]  # parallelism 480
    # Order of the paper's 15.6x (within ~2x).
    speedup = last[diffverbs] / last[rdma_storm]
    assert 7 < speedup < 40
    llast = lat.rows[-1]
    assert llast[diffverbs] < 0.25 * llast[rdma_storm]
