"""Figs. 29/30 — one-sided vs two-sided RDMA verbs microbenchmark."""

from _util import run_figure
from repro.bench.experiments import fig29_30_verbs


def test_fig29_30_verbs(benchmark):
    (table,) = run_figure(benchmark, fig29_30_verbs, "fig29_30")
    rows = {row[0]: row for row in table.rows}
    # Paper: one-sided > two-sided; READ best on both axes.
    assert rows["read"][1] > rows["write"][1] > rows["send"][1]
    assert rows["read"][2] < rows["write"][2] < rows["send"][2]
