"""Fig. 11 — Max Memory Size (MMS) sweep of the stream-slicing batcher."""

from _util import run_figure
from repro.bench.experiments import fig11_mms


def test_fig11_mms(benchmark):
    (table,) = run_figure(benchmark, fig11_mms, "fig11")
    lat = [row[2] for row in table.rows]
    thru = [row[1] for row in table.rows]
    # Latency is non-decreasing in MMS (more waiting for the buffer).
    assert lat[0] <= min(lat[1:]) * 1.05
    # Throughput does not degrade with MMS.
    assert min(thru) > 0.9 * max(thru)
