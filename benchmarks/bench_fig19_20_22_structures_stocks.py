"""Figs. 19/20/22 — multicast structure comparison (stock exchange)."""

from _util import run_figure
from repro.bench.experiments import fig19_20_22_structures_stocks


def test_fig19_20_22_structures_stocks(benchmark):
    thru, lat, mcast = run_figure(
        benchmark, fig19_20_22_structures_stocks, "fig19_20_22"
    )
    cols = thru.headers[1:]
    seq = cols.index("sequential") + 1
    bino = cols.index("binomial") + 1
    nb = cols.index("nonblocking") + 1
    last = thru.rows[-1]
    # Paper Figs 19/20: 1.22x over binomial, 1.4x over sequential.
    assert last[nb] > 1.05 * last[bino]
    assert last[nb] > 1.3 * last[seq]
    mlast = mcast.rows[-1]
    assert mlast[nb] < mlast[bino] < mlast[seq]
