"""Pytest configuration for the figure benchmarks."""

import sys
from pathlib import Path

# Make _util importable regardless of how pytest resolves rootdir.
sys.path.insert(0, str(Path(__file__).parent))
