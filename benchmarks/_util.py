"""Shared plumbing for the figure benchmarks.

Each benchmark runs its experiment exactly once under pytest-benchmark
(the timing is the harness cost of regenerating the figure, not a claim
about the simulated system), prints the reproduced rows, and saves them
under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Callable, Tuple

from repro.bench.report import Table

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def run_figure(benchmark, fn: Callable, name: str) -> Tuple[Table, ...]:
    """Run one experiment once, print + persist its tables.

    Each table is written twice — the human-readable ``<name>.txt``
    rendering and the machine-readable ``<name>.json`` of
    :meth:`Table.to_dict` — from the same in-memory object, so the two
    can never diverge.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    tables = result if isinstance(result, tuple) else (result,)
    for i, table in enumerate(tables):
        suffix = f"_{i}" if len(tables) > 1 else ""
        table.save(f"{name}{suffix}", directory=RESULTS_DIR)
        table.save_json(f"{name}{suffix}", directory=RESULTS_DIR)
        print("\n" + table.render())
    return tables
